#include "wdsparql/database.h"

#include <fstream>
#include <unordered_map>

#include "engine/api_internal.h"
#include "engine/join.h"
#include "hom/homomorphism.h"
#include "hom/pebble.h"
#include "optimizer/planner.h"
#include "ptree/tgraph.h"
#include "rdf/ntriples.h"
#include "util/timer.h"
#include "wd/eval.h"

namespace wdsparql {
namespace {

/// One id-resolved batch operation (the currency of the shared commit
/// path below; `Database::Apply` resolves spellings into these, the
/// single-triple mutators build one directly).
struct ResolvedOp {
  Triple t;
  bool add;
};

/// THE commit path — every mutation funnels through here. Sequential
/// semantics over `ops` reduce to a *net effect* (the last op per
/// triple wins; ops matching the current state drop out), which is then
/// made durable as ONE write-ahead-log record (a group frame for
/// multi-op batches) and applied as ONE copy-on-write delta build with
/// ONE view publish. An empty net effect is a complete no-op: nothing
/// is logged, nothing published, `generation()` stays put. On a WAL
/// failure the error latches, nothing is applied, and the status is
/// returned — the mutation was never made durable.
Status ApplyResolvedOps(DatabaseImpl* impl, const std::vector<ResolvedOp>& ops,
                        ApplyResult* result, TraceContext* trace = nullptr) {
  if (result != nullptr) *result = ApplyResult{};

  // Net effect: final desired presence per touched triple, in
  // first-touch order (deterministic WAL records and apply order).
  std::vector<Triple> touched;
  std::unordered_map<Triple, bool, TripleHash> desired;
  touched.reserve(ops.size());
  desired.reserve(ops.size());
  for (const ResolvedOp& op : ops) {
    auto [it, inserted] = desired.emplace(op.t, op.add);
    if (inserted) {
      touched.push_back(op.t);
    } else {
      it->second = op.add;
    }
  }
  std::vector<Triple> adds;
  std::vector<Triple> removes;
  for (const Triple& t : touched) {
    // The store mirrors the hash graph exactly and is maintained on
    // every path (hydrated or not), so it is the one presence oracle.
    bool present = impl->store.Contains(t);
    if (desired[t] && !present) {
      adds.push_back(t);
    } else if (!desired[t] && present) {
      removes.push_back(t);
    }
  }
  if (adds.empty() && removes.empty()) return Status::OK();

  // Commit-path accounting: one counter bump and one histogram sample
  // per effective commit (writer thread; never on the read hot path).
  impl->metrics->counter("write.commits").Add(1);
  impl->metrics->histogram("write.net_ops").Observe(adds.size() + removes.size());

  // Tracing: a caller-supplied context (the server's per-request trace)
  // parents the commit under its root span; without one, an enabled
  // recorder still gets a self-rooted commit trace, so /debug/trace
  // shows recent write activity even for embedded callers.
  TraceContext local_trace;
  if (trace == nullptr && impl->trace != nullptr) {
    local_trace = TraceContext(impl->trace.get());
    trace = &local_trace;
  }
  uint32_t commit_span = 0;
  if (trace != nullptr && trace->enabled()) {
    commit_span = trace->StartSpan("commit", trace->root());
    trace->Annotate(commit_span, "adds", static_cast<uint64_t>(adds.size()));
    trace->Annotate(commit_span, "removes",
                    static_cast<uint64_t>(removes.size()));
  }
  struct EndCommitSpan {
    TraceContext* trace;
    uint32_t span;
    ~EndCommitSpan() {
      if (trace != nullptr) trace->EndSpan(span);
    }
  } end_commit{trace, commit_span};

  const uint64_t generation_before = impl->store.generation();
  auto apply_chunk = [impl, result, generation_before, trace, commit_span](
                         const std::vector<Triple>& chunk_adds,
                         const std::vector<Triple>& chunk_removes) {
    impl->store.ApplyBatch(chunk_adds, chunk_removes, trace, commit_span);
    if (impl->graph_hydrated) {
      for (const Triple& t : chunk_adds) impl->graph.Insert(t);
      for (const Triple& t : chunk_removes) impl->graph.Remove(t);
    }
    if (result != nullptr) {
      result->added += chunk_adds.size();
      result->removed += chunk_removes.size();
      // Generation delta, not a constant: a threshold merge inside
      // ApplyBatch publishes twice, and error paths return the facts of
      // whatever prefix committed.
      result->publishes = impl->store.generation() - generation_before;
    }
  };

  if (impl->wal == nullptr) {
    apply_chunk(adds, removes);
    return Status::OK();
  }

  // The error latches: once an append failed, the log's tail state is
  // suspect and later mutations are refused outright (matching the
  // storage_status() contract) rather than racing a broken device.
  WDSPARQL_RETURN_IF_ERROR(impl->sticky_storage_status());

  // Commit-scoped WAL trace sink: appends below emit wal.append /
  // wal.fsync spans under the commit span. Detached on every exit path
  // (the context may die with this call's caller).
  struct WalTraceGuard {
    storage::WriteAheadLog* wal;
    ~WalTraceGuard() { wal->set_trace(nullptr, 0); }
  } wal_trace_guard{impl->wal.get()};
  impl->wal->set_trace(trace, commit_span);

  // WAL before data: spellings, not ids (ids are intern order and the
  // log outlives this pool; TermPool spelling views are address-stable,
  // so the refs stay valid across the append). Every practical batch is
  // ONE group frame, replayed all-or-nothing. A batch whose spellings
  // would overflow the WAL frame bound degrades gracefully into several
  // consecutive groups — each chunk is logged, then applied, before the
  // next, so the in-memory state and the log agree at every step,
  // whatever fails in between.
  std::vector<std::pair<Triple, bool>> net_ops;  // (triple, is_add).
  net_ops.reserve(adds.size() + removes.size());
  for (const Triple& t : adds) net_ops.emplace_back(t, true);
  for (const Triple& t : removes) net_ops.emplace_back(t, false);

  constexpr uint64_t kGroupPayloadBudget = 32ull << 20;  // Half the frame cap.
  const uint64_t wal_bytes_before = impl->wal->record_bytes();
  std::size_t begin = 0;
  while (begin < net_ops.size()) {
    std::vector<storage::WalOp> wal_ops;
    std::vector<Triple> chunk_adds;
    std::vector<Triple> chunk_removes;
    uint64_t payload = 1 + sizeof(uint32_t);  // Group tag + count.
    std::size_t end = begin;
    while (end < net_ops.size()) {
      const Triple& t = net_ops[end].first;
      bool is_add = net_ops[end].second;
      storage::WalOp op{is_add ? storage::WalRecordType::kAddTriple
                               : storage::WalRecordType::kRemoveTriple,
                        impl->pool->Spelling(t.subject),
                        impl->pool->Spelling(t.predicate),
                        impl->pool->Spelling(t.object)};
      uint64_t op_bytes = 1 + 3 * sizeof(uint32_t) + op.subject.size() +
                          op.predicate.size() + op.object.size();
      if (!wal_ops.empty() && payload + op_bytes > kGroupPayloadBudget) break;
      payload += op_bytes;
      wal_ops.push_back(op);
      (is_add ? chunk_adds : chunk_removes).push_back(t);
      ++end;
    }
    // One-op chunks keep the compact single-record frame; real groups
    // get the version-2 group frame.
    Status logged = wal_ops.size() == 1
                        ? impl->wal->Append(wal_ops[0].type, wal_ops[0].subject,
                                            wal_ops[0].predicate, wal_ops[0].object)
                        : impl->wal->AppendGroup(wal_ops);
    if (!logged.ok()) {
      // A size refusal (kInvalidArgument) wrote nothing and leaves the
      // log tail healthy: return it without latching. Device/tail
      // failures latch as always. Chunks committed before this point
      // are both durable and applied — memory and log still agree.
      if (logged.code() != StatusCode::kInvalidArgument) {
        impl->LatchStorageError(logged);
      }
      return logged;
    }
    apply_chunk(chunk_adds, chunk_removes);
    if (result != nullptr) {
      result->wal_groups += 1;
      result->wal_bytes = impl->wal->record_bytes() - wal_bytes_before;
    }
    begin = end;
  }
  return Status::OK();
}

}  // namespace

Database::Database(const DatabaseOptions& options)
    : impl_(std::make_unique<DatabaseImpl>(nullptr, options)) {}

Database::Database(TermPool* pool, const DatabaseOptions& options)
    : impl_(std::make_unique<DatabaseImpl>(pool, options)) {
  WDSPARQL_CHECK(pool != nullptr);
}

Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

bool Database::AddTriple(const Triple& t) {
  if (!t.IsGround()) return false;  // Variables are not storable facts.
  // A one-element batch through the shared commit path: same WAL-before-
  // data ordering, same single publish, same no-op-for-duplicates
  // behaviour as always — just no longer a separate code path.
  ApplyResult result;
  Status status = ApplyResolvedOps(impl_.get(), {{t, true}}, &result);
  return status.ok() && result.added == 1;
}

bool Database::AddTriple(std::string_view s, std::string_view p, std::string_view o) {
  return AddTriple(
      Triple(pool().InternIri(s), pool().InternIri(p), pool().InternIri(o)));
}

bool Database::RemoveTriple(const Triple& t) {
  ApplyResult result;
  Status status = ApplyResolvedOps(impl_.get(), {{t, false}}, &result);
  return status.ok() && result.removed == 1;
}

bool Database::RemoveTriple(std::string_view s, std::string_view p,
                            std::string_view o) {
  // Pure lookup: a delete probe for unknown spellings must not grow the
  // append-only pool (long-running services issue many no-op deletes).
  std::optional<TermId> sid = pool().FindIri(s);
  std::optional<TermId> pid = pool().FindIri(p);
  std::optional<TermId> oid = pool().FindIri(o);
  if (!sid.has_value() || !pid.has_value() || !oid.has_value()) return false;
  return RemoveTriple(Triple(*sid, *pid, *oid));
}

Status Database::Apply(WriteBatch&& batch, ApplyResult* result,
                       TraceContext* trace) {
  if (result != nullptr) *result = ApplyResult{};
  // Resolve spellings sequentially: adds intern (so a later remove of a
  // triple this very batch introduces still finds its terms); removes
  // only probe — a spelling the pool never interned cannot name a
  // present triple, so that remove is a net no-op and must not grow the
  // append-only pool.
  std::vector<ResolvedOp> ops;
  ops.reserve(batch.ops().size());
  TermPool& terms = pool();
  for (const WriteBatch::Op& op : batch.ops()) {
    if (op.add) {
      ops.push_back({Triple(terms.InternIri(op.subject),
                            terms.InternIri(op.predicate),
                            terms.InternIri(op.object)),
                     true});
    } else {
      std::optional<TermId> s = terms.FindIri(op.subject);
      std::optional<TermId> p = terms.FindIri(op.predicate);
      std::optional<TermId> o = terms.FindIri(op.object);
      if (!s.has_value() || !p.has_value() || !o.has_value()) continue;
      ops.push_back({Triple(*s, *p, *o), false});
    }
  }
  Status status = ApplyResolvedOps(impl_.get(), ops, result, trace);
  if (status.ok()) batch.Clear();  // Sink semantics: the batch is consumed.
  return status;
}

Status Database::LoadNTriples(std::string_view text) {
  // One batch, one delta build, one publish, one WAL group — and atomic
  // on parse errors, because the batch stages nothing until the whole
  // text parsed. (This retires the old empty-database-only sort-based
  // fast path: the batch path amortises identically without the
  // special case, WAL databases included.)
  WriteBatch batch;
  WDSPARQL_RETURN_IF_ERROR(batch.LoadNTriples(text));
  return Apply(std::move(batch));
}

Status Database::LoadNTriplesFile(const std::string& path, std::size_t batch_size) {
  if (batch_size == 0) {
    WriteBatch batch;
    WDSPARQL_RETURN_IF_ERROR(batch.LoadNTriplesFile(path));
    return Apply(std::move(batch));
  }
  return LoadNTriplesFile(path, batch_size, LoadProgress());
}

Status Database::LoadNTriplesFile(const std::string& path, std::size_t batch_size,
                                  const LoadProgress& progress) {
  if (batch_size == 0) {
    return Status::InvalidArgument(
        "LoadNTriplesFile with a progress callback requires batch_size > 0 "
        "(progress is reported per committed batch)");
  }
  // Streaming mode: parse straight into the database's pool and commit
  // every `batch_size` triples, bounding peak memory and WAL group size
  // (each committed batch stays applied if a later line fails to parse).
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  WriteBatch batch;
  std::string line;
  int line_number = 0;
  std::size_t triples_loaded = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::optional<Triple> triple;
    WDSPARQL_RETURN_IF_ERROR(ParseNTriplesLine(line, line_number, &pool(), &triple));
    if (!triple.has_value()) continue;
    batch.Add(pool(), *triple);
    if (batch.size() >= batch_size) {
      std::size_t committed = batch.size();
      WDSPARQL_RETURN_IF_ERROR(Apply(std::move(batch)));
      triples_loaded += committed;
      if (progress) progress(triples_loaded, committed);
    }
  }
  if (in.bad()) return Status::IoError("read failure on " + path);
  std::size_t committed = batch.size();
  WDSPARQL_RETURN_IF_ERROR(Apply(std::move(batch)));
  if (committed > 0) {
    triples_loaded += committed;
    if (progress) progress(triples_loaded, committed);
  }
  return Status::OK();
}

void Database::Compact() { impl_->store.MergeDelta(); }

std::size_t Database::size() const { return impl_->store.PinView()->size(); }

bool Database::Contains(const Triple& t) const {
  // The permutation store mirrors the hash graph exactly, and its
  // pinned view is safe against a concurrent writer.
  return impl_->store.PinView()->Contains(t);
}

std::size_t Database::pending_delta() const {
  return impl_->store.PinView()->pending_delta();
}

uint64_t Database::generation() const {
  return impl_->store.PinView()->generation();
}

TermPool& Database::pool() const { return *impl_->pool; }

Session Database::OpenSession(const SessionOptions& options) const {
  return Session(impl_.get(), options);
}

Snapshot Database::GetSnapshot() const {
  return Snapshot(impl_.get(), impl_->store.PinView());
}

uint64_t Snapshot::generation() const {
  return view_ == nullptr ? 0 : view_->generation();
}

std::size_t Snapshot::size() const { return view_ == nullptr ? 0 : view_->size(); }

bool Snapshot::Contains(const Triple& t) const {
  return view_ != nullptr && view_->Contains(t);
}

const RdfGraph& Database::graph() const {
  impl_->EnsureGraph();
  return impl_->graph;
}

Status Database::storage_status() const { return impl_->sticky_storage_status(); }

MetricsRegistry& Database::metrics() const { return *impl_->metrics; }

TraceRecorder* Database::trace_recorder() const { return impl_->trace.get(); }

std::string Database::DumpTraces(std::size_t max_traces) const {
  if (impl_->trace == nullptr) return "{\"traces\":[]}";
  return impl_->trace->DumpJson(max_traces);
}

std::string Database::DumpMetrics(MetricsFormat format) const {
  return impl_->metrics->Dump(format);
}

const IndexedStore& Database::store() const { return impl_->store; }

const char* BackendToString(Backend backend) {
  switch (backend) {
    case Backend::kNaiveHash: return "naive-hash";
    case Backend::kIndexed: return "indexed";
  }
  return "unknown";
}

namespace engine_internal {

void BulkLoad(Database* db, const TripleSet& triples) {
  DatabaseImpl* impl = &DatabaseImpl::Get(*db);
  WDSPARQL_CHECK(impl->graph.empty() && impl->store.size() == 0);
  impl->graph.Reserve(triples.size());
  for (const Triple& t : triples.triples()) impl->graph.Insert(t);
  // AdoptFrom, not assignment: replacing the store object outright
  // would swap the view slot non-atomically under concurrent readers
  // (size()/Contains()/cursor opens are documented safe during any
  // mutation, bulk loads included).
  impl->store.AdoptFrom(IndexedStore::Build(impl->graph.triples()));
  impl->graph_hydrated = true;  // Both stores now hold the full content.
}

const HashTripleSource& HashSourceOf(const Database& db) {
  DatabaseImpl::Get(db).EnsureGraph();
  return DatabaseImpl::Get(db).hash_source;
}

namespace {

/// `CandidateGenerator` over a resumable `JoinCursor`: the indexed
/// backend's suspendable candidate source. Shares ownership of the
/// pinned view through the cursor; an optional root claim partitions
/// the candidate space across parallel workers.
///
/// When `optimize` is set and the view carries cardinality statistics,
/// the subtree's variable order comes from the cost-based planner and
/// the chosen plan is surfaced through `plan_info()`. Planning is a pure
/// function of (view, patterns), so parallel workers — each constructing
/// their own generator over the same pinned view — compute identical
/// orders, which is what keeps root-claim partitioning exact.
class JoinCursorGenerator final : public CandidateGenerator {
 public:
  JoinCursorGenerator(std::shared_ptr<const ReadView> view,
                      const std::vector<Triple>& patterns, JoinStats* stats,
                      const std::function<bool()>& claim, bool optimize,
                      const TermPool* pool, Counter* plans_metric,
                      Histogram* plan_ns_metric)
      : plan_(MakePlan(view.get(), patterns, optimize, plans_metric,
                       plan_ns_metric, &info_.plan_ns)),
        cursor_(std::move(view), patterns, VarAssignment{}, stats,
                plan_.has_value() ? &plan_->var_order : nullptr) {
    if (plan_.has_value()) {
      info_.est_rows = plan_->est_rows;
      info_.est_cost = plan_->est_cost;
      info_.description = optimizer::DescribePlan(*plan_, *pool);
    }
    if (claim) cursor_.SetRootClaim(claim);
  }

  bool Next(VarAssignment* out) override { return cursor_.Next(out); }

  const CandidatePlanInfo* plan_info() const override {
    return plan_.has_value() ? &info_ : nullptr;
  }

 private:
  static std::optional<optimizer::SubtreePlan> MakePlan(
      const ReadView* view, const std::vector<Triple>& patterns, bool optimize,
      Counter* plans_metric, Histogram* plan_ns_metric, uint64_t* plan_ns) {
    if (!optimize || view->stats() == nullptr) return std::nullopt;
    Timer timer;
    std::optional<optimizer::SubtreePlan> plan =
        optimizer::PlanSubtree(*view, patterns);
    *plan_ns = timer.ElapsedNanos();
    if (plan.has_value()) {
      plans_metric->Add(1);
      plan_ns_metric->Observe(*plan_ns);
    }
    return plan;
  }

  // Declaration order is load-bearing: `plan_` initialises (writing
  // `info_.plan_ns`) before `cursor_`, which consumes the chosen order.
  CandidatePlanInfo info_;
  std::optional<optimizer::SubtreePlan> plan_;
  JoinCursor cursor_;
};

}  // namespace

EnumerationHooks MakeEnumerationHooks(const DatabaseImpl& db,
                                      const SessionOptions& options,
                                      std::shared_ptr<const ReadView> view,
                                      JoinStats* join_stats,
                                      std::function<bool()> root_claim,
                                      bool optimize) {
  EnumerationHooks hooks;
  if (options.backend == Backend::kIndexed) {
    // The hooks share ownership of the pinned view: the enumeration
    // stays valid however long the cursor lives and whatever the writer
    // does meanwhile. `join_stats` (when collecting) is cursor-local and
    // outlives the hooks by contract, so the lambdas capture it raw.
    if (view == nullptr) view = db.store.PinView();
    // Optimizer plumbing, resolved once per hooks build (instrument
    // addresses are registry-stable; the lookup mutex is fine off the
    // per-row hot path). The pool pointer renders plan descriptions.
    const TermPool* pool = db.pool;
    Counter* plans_metric = &db.metrics->counter("optimizer.plans");
    Histogram* plan_ns_metric = &db.metrics->histogram("optimizer.plan_ns");
    hooks.open_candidates =
        [view, join_stats, claim = std::move(root_claim), optimize, pool,
         plans_metric, plan_ns_metric](
            const TripleSet& pattern) -> std::unique_ptr<CandidateGenerator> {
      return std::make_unique<JoinCursorGenerator>(view, pattern.triples(),
                                                   join_stats, claim, optimize,
                                                   pool, plans_metric,
                                                   plan_ns_metric);
    };
    hooks.candidates = [view, join_stats](
                           const TripleSet& pattern,
                           const std::function<bool(const VarAssignment&)>& emit) {
      JoinEnumerate(*view, pattern.triples(), VarAssignment{}, emit, join_stats);
    };
    hooks.extends = [view, join_stats](const TripleSet& combined, const Mapping& mu) {
      return JoinExists(*view, combined.triples(), MappingToAssignment(mu),
                        join_stats);
    };
    return hooks;
  }
  db.EnsureGraph();  // The naive backend scans the hash row store.
  const HashTripleSource* source = &db.hash_source;
  hooks.candidates = [source](const TripleSet& pattern,
                              const std::function<bool(const VarAssignment&)>& emit) {
    EnumerateHomomorphisms(pattern, VarAssignment{}, *source, emit);
  };
  if (options.pebble_promise > 0) {
    const RdfGraph* graph = &db.graph;
    int k = options.pebble_promise;
    hooks.extends = [graph, k](const TripleSet& combined, const Mapping& mu) {
      return PebbleGameWins(combined, MappingToAssignment(mu), graph->triples(), k + 1);
    };
  } else {
    hooks.extends = [source](const TripleSet& combined, const Mapping& mu) {
      return HasHomomorphism(combined, MappingToAssignment(mu), *source);
    };
  }
  return hooks;
}

EnumerationHooks MakeNaiveSnapshotHooks(const HashTripleSource& source,
                                        int pebble_promise) {
  EnumerationHooks hooks;
  const HashTripleSource* src = &source;
  hooks.candidates = [src](const TripleSet& pattern,
                           const std::function<bool(const VarAssignment&)>& emit) {
    EnumerateHomomorphisms(pattern, VarAssignment{}, *src, emit);
  };
  if (pebble_promise > 0) {
    int k = pebble_promise;
    hooks.extends = [src, k](const TripleSet& combined, const Mapping& mu) {
      return PebbleGameWins(combined, MappingToAssignment(mu), src->triple_set(),
                            k + 1);
    };
  } else {
    hooks.extends = [src](const TripleSet& combined, const Mapping& mu) {
      return HasHomomorphism(combined, MappingToAssignment(mu), *src);
    };
  }
  return hooks;
}

bool EvaluateMembershipOnView(const PatternForest& forest, const Mapping& mu,
                              const ReadView& view, EvalStats* stats) {
  VarAssignment fixed = MappingToAssignment(mu);
  return WdEvalWith(forest, view, mu, stats, [&](const TripleSet& combined) {
    return JoinExists(view, combined.triples(), fixed);
  });
}

bool EvaluateMembership(const DatabaseImpl& db, const SessionOptions& options,
                        const PatternForest& forest, const Mapping& mu,
                        EvalStats* stats) {
  switch (options.backend) {
    case Backend::kIndexed: {
      // Pin once for the whole membership test: candidate scans and the
      // maximality certificates all read the same consistent snapshot.
      std::shared_ptr<const ReadView> view = db.store.PinView();
      return EvaluateMembershipOnView(forest, mu, *view, stats);
    }
    case Backend::kNaiveHash:
      db.EnsureGraph();  // Both naive eval paths read the hash row store.
      if (options.pebble_promise > 0) {
        return PebbleWdEval(forest, db.graph, mu, options.pebble_promise, stats);
      }
      return NaiveWdEval(forest, db.hash_source, mu, stats);
  }
  return false;
}

}  // namespace engine_internal

}  // namespace wdsparql
