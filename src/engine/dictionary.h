#ifndef WDSPARQL_ENGINE_DICTIONARY_H_
#define WDSPARQL_ENGINE_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "rdf/triple_set.h"

/// \file
/// Dictionary encoding of interned terms.
///
/// Real triple stores (RDF-3X, Trident) separate the string dictionary
/// from the triple indexes: triples are stored as tuples of dense
/// machine ids so permutation indexes stay compact and comparisons are
/// integer compares. This library already interns spellings to `TermId`s
/// in the `TermPool`; the engine adds a second, per-store dictionary that
/// maps the terms *actually occurring in one triple set* to a dense
/// `DataId` range `[0, size)`, assigned in ascending `TermId` order. The
/// density is what makes the permutation vectors of `IndexedStore`
/// sortable and binary-searchable, and the order preservation means
/// `DataId` order coincides with `TermId` order — handy for emitting
/// sorted candidate values during joins.
///
/// Concurrency: the dictionary is append-only, and its storage is laid
/// out so that a published *prefix* of it can be read lock-free while a
/// single writer keeps appending. The term array lives in a shared
/// buffer that is only ever replaced wholesale (never reallocated under
/// readers), and the lookup index over appended terms is an immutable
/// sorted run plus a bounded tail, both copy-on-write. `DictView`
/// captures one consistent prefix; see docs/CONCURRENCY.md.

namespace wdsparql {

/// Dense per-store term id.
using DataId = uint32_t;

/// Sentinel: "no id" / wildcard in encoded patterns.
inline constexpr DataId kNoDataId = 0xFFFFFFFFu;

/// An immutable snapshot of a `Dictionary` prefix: every `DataId` below
/// `size()` decodes, and `Encode` resolves exactly the terms that had
/// been added when the view was taken. Cheap to copy (a few shared
/// pointers); safe to use from any thread while the source dictionary
/// keeps growing, provided the view was obtained through a
/// release/acquire publication edge (the `ReadView` publish).
class DictView {
 public:
  DictView() = default;

  /// The dense id of `t`, or `kNoDataId` if `t` was not in the
  /// dictionary when the view was taken. O(log size).
  DataId Encode(TermId t) const;

  /// Miss-safe `Encode`.
  std::optional<DataId> TryResolve(TermId t) const {
    DataId id = Encode(t);
    if (id == kNoDataId) return std::nullopt;
    return id;
  }

  /// The term with dense id `id`; fatal if out of the view's range.
  TermId Decode(DataId id) const {
    WDSPARQL_CHECK(id < size_);
    return (*terms_)[id];
  }

  /// Number of distinct terms in the view.
  std::size_t size() const { return size_; }

  /// Length of the TermId-sorted prefix (see `Dictionary`).
  std::size_t sorted_limit() const { return sorted_limit_; }

 private:
  friend class Dictionary;

  // The buffers are over-allocated: only the first `size_` /
  // `tail_size_` entries belong to this view. Slots past them may be
  // written by the dictionary's writer thread, but never the ones the
  // view indexes — see the publication protocol in docs/CONCURRENCY.md.
  std::shared_ptr<const std::vector<TermId>> terms_;
  std::size_t size_ = 0;
  std::size_t sorted_limit_ = 0;
  std::shared_ptr<const std::vector<std::pair<TermId, DataId>>> folded_;
  std::shared_ptr<const std::vector<std::pair<TermId, DataId>>> tail_;
  std::size_t tail_size_ = 0;
};

/// Map between the distinct `TermId`s of one triple set and the dense
/// range `[0, size)`.
///
/// `Build` assigns ids in ascending `TermId` order (the bulk-load fast
/// path: lookups in that prefix are binary searches). Incremental stores
/// extend the dictionary through `GetOrAdd`, which *appends* — new terms
/// take the next free `DataId`, so existing encoded triples never need
/// re-encoding when the store mutates. The price is that the global
/// DataId-order/TermId-order coincidence only holds for the built prefix;
/// all engine algorithms require only a fixed total order on `DataId`s,
/// which appending preserves.
///
/// Thread-safety: not itself thread-safe — one writer (or external
/// serialisation) mutates it. Concurrent readers go through `view()`
/// snapshots published by the owning store.
class Dictionary {
 public:
  Dictionary() = default;

  // Copies deep-copy the mutable buffers (two dictionaries must never
  // append into shared storage); the immutable folded run is shared.
  Dictionary(const Dictionary& other) { *this = other; }
  Dictionary& operator=(const Dictionary& other);
  Dictionary(Dictionary&& other) noexcept { *this = std::move(other); }
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// Builds the dictionary of the distinct terms of `set`.
  static Dictionary Build(const TripleSet& set);

  /// Builds the dictionary of the distinct terms of `triples` (the bulk
  /// loader's path: no TripleSet hash indexes required).
  static Dictionary Build(const std::vector<Triple>& triples);

  /// \internal Reconstitutes a dictionary from its persisted parts: the
  /// DataId-indexed term array and the length of its TermId-sorted
  /// prefix (terms past it were appended by `GetOrAdd` and are looked up
  /// through the rebuilt appended index). Used by snapshot open.
  static Dictionary FromParts(std::vector<TermId> terms, std::size_t sorted_limit);

  /// \internal The TermId-sorted prefix length (persisted alongside the
  /// term array so `FromParts` can restore the lookup structure).
  std::size_t sorted_limit() const { return sorted_limit_; }

  /// The dense id of `t`, or `kNoDataId` if `t` is not in the dictionary.
  /// O(log size).
  DataId Encode(TermId t) const;

  /// Miss-safe lookup: the dense id of `t`, or nullopt if `t` is not in
  /// the dictionary. Prefer this over `Encode` in code that must handle
  /// unknown terms (e.g. constants in user queries that never occur in
  /// the stored graph).
  std::optional<DataId> TryResolve(TermId t) const {
    DataId id = Encode(t);
    if (id == kNoDataId) return std::nullopt;
    return id;
  }

  /// The dense id of `t`, appending a fresh id if `t` is new.
  DataId GetOrAdd(TermId t);

  /// Bulk variant for batch ingest: appends every not-yet-present term
  /// of `terms` (duplicates collapse; ids assigned in ascending TermId
  /// order among the newcomers) and rebuilds the appended-term index
  /// exactly ONCE. `GetOrAdd` folds that index every `kFoldLimit`
  /// appends — quadratic across a large bulk load — so the batch apply
  /// path pre-registers its terms here and its per-triple `GetOrAdd`
  /// calls all hit. Readers are unaffected: the same copy-on-write
  /// publication discipline applies.
  void EnsureTerms(const std::vector<TermId>& terms);

  /// The term with dense id `id`; fatal if out of range.
  TermId Decode(DataId id) const {
    WDSPARQL_CHECK(id < size_);
    return (*terms_)[id];
  }

  /// Number of distinct terms.
  std::size_t size() const { return size_; }

  /// \internal Contiguous DataId-indexed term array, `size()` entries
  /// (snapshot serialization).
  const TermId* terms_data() const { return terms_ == nullptr ? nullptr : terms_->data(); }

  /// An immutable snapshot of the current content. O(1).
  DictView view() const;

 private:
  void InitBuffers(std::vector<TermId> sorted_terms);
  void AppendTerm(TermId t, DataId id);

  // Shared, over-allocated buffers: the first `size_`/`tail_size_`
  // entries are live. Growth swaps in a fresh doubled buffer instead of
  // reallocating, so views taken earlier keep valid storage.
  std::shared_ptr<std::vector<TermId>> terms_;   // Index == DataId.
  std::size_t size_ = 0;
  std::size_t sorted_limit_ = 0;  // [0, sorted_limit_) is TermId-sorted.
  // Lookup index over terms appended past the sorted prefix: an
  // immutable TermId-sorted run, plus a small insertion-order tail that
  // is folded into a fresh run when it exceeds kFoldLimit. Readers
  // binary-search the run and linearly scan the tail, so the tail bound
  // caps their worst case; folding is O(appended) but amortised
  // O(appended / kFoldLimit) per append.
  static constexpr std::size_t kFoldLimit = 256;
  std::shared_ptr<const std::vector<std::pair<TermId, DataId>>> folded_;
  std::shared_ptr<std::vector<std::pair<TermId, DataId>>> tail_;
  std::size_t tail_size_ = 0;
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_DICTIONARY_H_
