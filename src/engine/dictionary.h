#ifndef WDSPARQL_ENGINE_DICTIONARY_H_
#define WDSPARQL_ENGINE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/triple_set.h"

/// \file
/// Dictionary encoding of interned terms.
///
/// Real triple stores (RDF-3X, Trident) separate the string dictionary
/// from the triple indexes: triples are stored as tuples of dense
/// machine ids so permutation indexes stay compact and comparisons are
/// integer compares. This library already interns spellings to `TermId`s
/// in the `TermPool`; the engine adds a second, per-store dictionary that
/// maps the terms *actually occurring in one triple set* to a dense
/// `DataId` range `[0, size)`, assigned in ascending `TermId` order. The
/// density is what makes the permutation vectors of `IndexedStore`
/// sortable and binary-searchable, and the order preservation means
/// `DataId` order coincides with `TermId` order — handy for emitting
/// sorted candidate values during joins.

namespace wdsparql {

/// Dense per-store term id.
using DataId = uint32_t;

/// Sentinel: "no id" / wildcard in encoded patterns.
inline constexpr DataId kNoDataId = 0xFFFFFFFFu;

/// Map between the distinct `TermId`s of one triple set and the dense
/// range `[0, size)`.
///
/// `Build` assigns ids in ascending `TermId` order (the bulk-load fast
/// path: lookups in that prefix are binary searches). Incremental stores
/// extend the dictionary through `GetOrAdd`, which *appends* — new terms
/// take the next free `DataId`, so existing encoded triples never need
/// re-encoding when the store mutates. The price is that the global
/// DataId-order/TermId-order coincidence only holds for the built prefix;
/// all engine algorithms require only a fixed total order on `DataId`s,
/// which appending preserves.
class Dictionary {
 public:
  Dictionary() = default;

  /// Builds the dictionary of the distinct terms of `set`.
  static Dictionary Build(const TripleSet& set);

  /// Builds the dictionary of the distinct terms of `triples` (the bulk
  /// loader's path: no TripleSet hash indexes required).
  static Dictionary Build(const std::vector<Triple>& triples);

  /// \internal Reconstitutes a dictionary from its persisted parts: the
  /// DataId-indexed term array and the length of its TermId-sorted
  /// prefix (terms past it were appended by `GetOrAdd` and are looked up
  /// through the rebuilt hash map). Used by snapshot open.
  static Dictionary FromParts(std::vector<TermId> terms, std::size_t sorted_limit);

  /// \internal The TermId-sorted prefix length (persisted alongside
  /// `terms()` so `FromParts` can restore the lookup structure).
  std::size_t sorted_limit() const { return sorted_limit_; }

  /// The dense id of `t`, or `kNoDataId` if `t` is not in the dictionary.
  /// O(log prefix) + O(1) amortised for appended terms.
  DataId Encode(TermId t) const;

  /// Miss-safe lookup: the dense id of `t`, or nullopt if `t` is not in
  /// the dictionary. Prefer this over `Encode` in code that must handle
  /// unknown terms (e.g. constants in user queries that never occur in
  /// the stored graph).
  std::optional<DataId> TryResolve(TermId t) const {
    DataId id = Encode(t);
    if (id == kNoDataId) return std::nullopt;
    return id;
  }

  /// The dense id of `t`, appending a fresh id if `t` is new.
  DataId GetOrAdd(TermId t);

  /// The term with dense id `id`; fatal if out of range.
  TermId Decode(DataId id) const {
    WDSPARQL_CHECK(id < terms_.size());
    return terms_[id];
  }

  /// Number of distinct terms.
  std::size_t size() const { return terms_.size(); }

  /// The distinct terms, indexed by `DataId`. Ascending by `TermId` over
  /// the `Build` prefix; terms appended by `GetOrAdd` follow in insertion
  /// order.
  const std::vector<TermId>& terms() const { return terms_; }

 private:
  std::vector<TermId> terms_;        // Index == DataId.
  std::size_t sorted_limit_ = 0;     // [0, sorted_limit_) is TermId-sorted.
  std::unordered_map<TermId, DataId> appended_;  // Terms past the prefix.
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_DICTIONARY_H_
