#ifndef WDSPARQL_ENGINE_DICTIONARY_H_
#define WDSPARQL_ENGINE_DICTIONARY_H_

#include <cstdint>
#include <vector>

#include "rdf/triple_set.h"

/// \file
/// Dictionary encoding of interned terms.
///
/// Real triple stores (RDF-3X, Trident) separate the string dictionary
/// from the triple indexes: triples are stored as tuples of dense
/// machine ids so permutation indexes stay compact and comparisons are
/// integer compares. This library already interns spellings to `TermId`s
/// in the `TermPool`; the engine adds a second, per-store dictionary that
/// maps the terms *actually occurring in one triple set* to a dense
/// `DataId` range `[0, size)`, assigned in ascending `TermId` order. The
/// density is what makes the permutation vectors of `IndexedStore`
/// sortable and binary-searchable, and the order preservation means
/// `DataId` order coincides with `TermId` order — handy for emitting
/// sorted candidate values during joins.

namespace wdsparql {

/// Dense per-store term id.
using DataId = uint32_t;

/// Sentinel: "no id" / wildcard in encoded patterns.
inline constexpr DataId kNoDataId = 0xFFFFFFFFu;

/// Order-preserving map between the distinct `TermId`s of one triple set
/// and the dense range `[0, size)`.
class Dictionary {
 public:
  Dictionary() = default;

  /// Builds the dictionary of the distinct terms of `set`.
  static Dictionary Build(const TripleSet& set);

  /// The dense id of `t`, or `kNoDataId` if `t` does not occur in the
  /// indexed set. O(log size) via binary search on the sorted term list.
  DataId Encode(TermId t) const;

  /// The term with dense id `id`; fatal if out of range.
  TermId Decode(DataId id) const {
    WDSPARQL_CHECK(id < terms_.size());
    return terms_[id];
  }

  /// Number of distinct terms.
  std::size_t size() const { return terms_.size(); }

  /// The distinct terms, ascending by `TermId` (== ascending by DataId).
  const std::vector<TermId>& terms() const { return terms_; }

 private:
  std::vector<TermId> terms_;  // Sorted; index == DataId.
};

}  // namespace wdsparql

#endif  // WDSPARQL_ENGINE_DICTIONARY_H_
