#include "engine/query_engine.h"

#include <algorithm>

#include "engine/join.h"
#include "ptree/tgraph.h"
#include "sparql/parser.h"
#include "sparql/well_designed.h"

namespace wdsparql {
namespace {

/// Join-based instantiation of the shared enumeration skeleton:
/// candidates come from the leapfrog join over each subtree's
/// conjunctive pattern, maximality from an early-exit join over each
/// child extension.
void JoinEnumerateSolutions(const PatternForest& forest, const IndexedStore& store,
                            const std::function<bool(const Mapping&)>& callback,
                            EnumerateStats* stats) {
  EnumerationHooks hooks;
  hooks.candidates = [&store](const TripleSet& pattern,
                              const std::function<bool(const VarAssignment&)>& emit) {
    JoinEnumerate(store, pattern.triples(), VarAssignment{}, emit);
  };
  hooks.extends = [&store](const TripleSet& combined, const Mapping& mu) {
    return JoinExists(store, combined.triples(), MappingToAssignment(mu));
  };
  EnumerateSolutionsWith(forest, hooks, callback, stats);
}

/// Join-based wdEVAL membership: subtree matching probes the store, and
/// each child-extension certificate is an early-exit join.
bool JoinWdEval(const PatternForest& forest, const IndexedStore& store,
                const Mapping& mu, EvalStats* stats) {
  VarAssignment fixed = MappingToAssignment(mu);
  return WdEvalWith(forest, store, mu, stats, [&](const TripleSet& combined) {
    return JoinExists(store, combined.triples(), fixed);
  });
}

}  // namespace

const char* BackendToString(Backend backend) {
  switch (backend) {
    case Backend::kNaiveHash: return "naive-hash";
    case Backend::kIndexed: return "indexed";
  }
  return "unknown";
}

QueryEngine::QueryEngine(const RdfGraph& graph, const QueryEngineOptions& options)
    : graph_(graph), options_(options), hash_source_(graph.triples()) {
  if (options_.backend == Backend::kIndexed) {
    indexed_ = std::make_unique<IndexedStore>(IndexedStore::Build(graph.triples()));
  }
}

const TripleSource& QueryEngine::source() const {
  if (indexed_ != nullptr) return *indexed_;
  return hash_source_;
}

Result<PreparedQuery> QueryEngine::Prepare(std::string_view pattern_text) const {
  Result<PatternPtr> parsed = ParsePattern(pattern_text, graph_.pool());
  if (!parsed.ok()) return parsed.status();
  return PrepareParsed(parsed.value());
}

Result<PreparedQuery> QueryEngine::PrepareParsed(const PatternPtr& pattern) const {
  WDSPARQL_RETURN_IF_ERROR(CheckWellDesigned(pattern, *graph_.pool()));
  Result<PatternForest> forest = BuildPatternForest(pattern, *graph_.pool());
  if (!forest.ok()) return forest.status();
  PreparedQuery query;
  query.pattern = pattern;
  query.forest = std::move(forest).value();
  return query;
}

bool QueryEngine::Evaluate(const PreparedQuery& query, const Mapping& mu,
                           EvalStats* stats) const {
  switch (options_.backend) {
    case Backend::kIndexed:
      return JoinWdEval(query.forest, *indexed_, mu, stats);
    case Backend::kNaiveHash:
      if (options_.pebble_promise > 0) {
        return PebbleWdEval(query.forest, graph_, mu, options_.pebble_promise, stats);
      }
      return NaiveWdEval(query.forest, graph_, mu, stats);
  }
  return false;
}

void QueryEngine::EnumerateSolutions(const PreparedQuery& query,
                                     const std::function<bool(const Mapping&)>& callback,
                                     EnumerateStats* stats) const {
  switch (options_.backend) {
    case Backend::kIndexed:
      JoinEnumerateSolutions(query.forest, *indexed_, callback, stats);
      return;
    case Backend::kNaiveHash:
      EnumerateSolutionsNaive(query.forest, hash_source_, callback, stats);
      return;
  }
}

std::vector<Mapping> QueryEngine::Solutions(const PreparedQuery& query,
                                            EnumerateStats* stats) const {
  std::vector<Mapping> out;
  EnumerateSolutions(
      query,
      [&out](const Mapping& mu) {
        out.push_back(mu);
        return true;
      },
      stats);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t QueryEngine::Count(const PreparedQuery& query) const {
  uint64_t count = 0;
  EnumerateSolutions(query, [&count](const Mapping&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace wdsparql
