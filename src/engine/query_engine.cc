#include "engine/query_engine.h"

#include <algorithm>

#include "engine/api_internal.h"
#include "sparql/parser.h"
#include "sparql/well_designed.h"

namespace wdsparql {

QueryEngine::QueryEngine(const RdfGraph& graph, const QueryEngineOptions& options)
    : graph_(graph), options_(options), db_(graph.pool()) {
  engine_internal::BulkLoad(&db_, graph.triples());
}

const TripleSource& QueryEngine::source() const {
  if (options_.backend == Backend::kIndexed) return db_.store();
  return engine_internal::HashSourceOf(db_);
}

const IndexedStore* QueryEngine::indexed_store() const {
  return options_.backend == Backend::kIndexed ? &db_.store() : nullptr;
}

Result<PreparedQuery> QueryEngine::Prepare(std::string_view pattern_text) const {
  Result<PatternPtr> parsed = ParsePattern(pattern_text, graph_.pool());
  if (!parsed.ok()) return parsed.status();
  return PrepareParsed(parsed.value());
}

Result<PreparedQuery> QueryEngine::PrepareParsed(const PatternPtr& pattern) const {
  WDSPARQL_RETURN_IF_ERROR(CheckWellDesigned(pattern, *graph_.pool()));
  Result<PatternForest> forest = BuildPatternForest(pattern, *graph_.pool());
  if (!forest.ok()) return forest.status();
  PreparedQuery query;
  query.pattern = pattern;
  query.forest = std::move(forest).value();
  return query;
}

bool QueryEngine::Evaluate(const PreparedQuery& query, const Mapping& mu,
                           EvalStats* stats) const {
  return engine_internal::EvaluateMembership(DatabaseImpl::Get(db_),
                                             session_options(), query.forest, mu,
                                             stats);
}

void QueryEngine::EnumerateSolutions(const PreparedQuery& query,
                                     const std::function<bool(const Mapping&)>& callback,
                                     EnumerateStats* stats) const {
  // Same machinery as a Cursor: the suspendable enumerator, driven to
  // completion (or until the callback stops it).
  SolutionEnumerator enumerator(
      query.forest,
      engine_internal::MakeEnumerationHooks(DatabaseImpl::Get(db_), session_options(), nullptr));
  Mapping mu;
  while (enumerator.Next(&mu)) {
    if (!callback(mu)) break;
  }
  if (stats != nullptr) *stats = enumerator.stats();
}

std::vector<Mapping> QueryEngine::Solutions(const PreparedQuery& query,
                                            EnumerateStats* stats) const {
  std::vector<Mapping> out;
  EnumerateSolutions(
      query,
      [&out](const Mapping& mu) {
        out.push_back(mu);
        return true;
      },
      stats);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t QueryEngine::Count(const PreparedQuery& query) const {
  uint64_t count = 0;
  EnumerateSolutions(query, [&count](const Mapping&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace wdsparql
