/// \file
/// wdsparql_load: stream an N-Triples file into a single-file snapshot.
///
///   wdsparql_load [--batch-size N] [--wal] [--quiet] [--trace]
///                 <input.nt> <output.snap>
///
/// The bulk-load path, built on the public `WriteBatch` API — the exact
/// ingestion machinery `Database::Apply` serves, no bespoke loader-only
/// code path: lines stream off the file one at a time, accumulate into
/// a `WriteBatch`, and every `--batch-size` triples (default 4096) the
/// batch commits as ONE merged delta build and ONE view publish.
/// Memory stays bounded by one batch plus the store itself.
///
/// Two durability modes:
///   * default — ingest into an in-memory database, then write the
///     snapshot once at the end (atomic rename);
///   * --wal   — open <output.snap> with write-ahead logging
///     (create_if_missing) so every committed batch is durable as one
///     CRC-framed group record *before* it applies, then fold the log
///     into the snapshot with a final Checkpoint. Killing the loader
///     mid-run loses at most the in-flight batch: a reopen replays
///     exactly the committed groups, all-or-nothing each.
///
/// Progress reporting rides the library's `LoadProgress` callback (one
/// line per committed batch with its ingest throughput; `--quiet`
/// silences these), and the run ends with the engine's own metrics
/// summary (`Database::DumpMetrics`) — the loader derives no timing of
/// its own beyond the shared stopwatch. `--trace` additionally dumps
/// the flight recorder's most recent commit/checkpoint traces as JSON
/// (wdsparql/trace.h), showing where each batch's time went:
/// delta_build vs publish/compact vs wal.append/wal.fsync.
///
/// Query the result with `query_tool --db <output.snap>` or
/// `Database::Open`.
///
/// Exit status: 0 on success, 1 on user/parse/write error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "storage/format.h"
#include "util/timer.h"
#include "wdsparql/wdsparql.h"

using namespace wdsparql;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: wdsparql_load [--batch-size N] [--wal] [--quiet] "
               "[--trace] <input.nt> <output.snap>\n");
  return 1;
}

/// Triples-per-second, guarded against a sub-resolution elapsed time.
double Throughput(std::size_t triples, double seconds) {
  return seconds > 0 ? static_cast<double>(triples) / seconds : 0.0;
}

/// Reads the freshly written snapshot's header + section directory and
/// reports the cardinality-statistics footprint (sections 6-11) — the
/// bytes the cost-based optimizer's persisted counts add to the file.
/// Best-effort: a short or legacy (version 1) file just prints nothing.
void ReportStatsSections(const char* path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return;
  storage::SnapshotHeader header{};
  if (!file.read(reinterpret_cast<char*>(&header), sizeof(header))) return;
  if (std::memcmp(header.magic, storage::kSnapshotMagic, 8) != 0) return;
  if (header.section_count == 0 || header.section_count > storage::kMaxSections) {
    return;
  }
  std::vector<storage::SectionEntry> entries(header.section_count);
  if (!file.read(reinterpret_cast<char*>(entries.data()),
                 static_cast<std::streamsize>(entries.size() *
                                              sizeof(storage::SectionEntry)))) {
    return;
  }
  static const char* const kNames[6] = {"s", "p", "o", "sp", "po", "os"};
  uint64_t total = 0;
  std::string detail;
  for (const storage::SectionEntry& entry : entries) {
    if (entry.id < storage::kSectionStatsS || entry.id > storage::kSectionStatsOs) {
      continue;
    }
    total += entry.length;
    if (!detail.empty()) detail += ' ';
    detail += kNames[entry.id - storage::kSectionStatsS];
    detail += '=';
    detail += std::to_string(entry.length);
  }
  if (total == 0) {
    std::fprintf(stderr,
                 "stats sections: none (version %u snapshot; statistics "
                 "rebuild on first Compact after open)\n",
                 header.version);
    return;
  }
  std::fprintf(stderr, "stats sections: %llu byte(s) [%s]\n",
               static_cast<unsigned long long>(total), detail.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t batch_size = 4096;
  bool use_wal = false;
  bool quiet = false;
  bool dump_trace = false;
  const char* input_path = nullptr;
  const char* output_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1) return Usage();
      batch_size = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(argv[i], "--wal") == 0) {
      use_wal = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      dump_trace = true;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return Usage();
    } else if (input_path == nullptr) {
      input_path = argv[i];
    } else if (output_path == nullptr) {
      output_path = argv[i];
    } else {
      return Usage();
    }
  }
  if (input_path == nullptr || output_path == nullptr) return Usage();

  Timer total_timer;

  Database db;
  if (use_wal) {
    OpenOptions options;
    options.durability = Durability::kWal;
    options.create_if_missing = true;
    Result<Database> opened = Database::Open(output_path, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", output_path,
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(opened).value();
  }

  // The streaming batch loader IS the library's: one WriteBatch commit
  // (one delta build, one publish, one WAL group) per batch_size
  // triples, at most one batch buffered. Per-batch throughput comes
  // from the progress callback — the batch stopwatch restarts after
  // each report, so every line measures exactly one parse+commit cycle.
  Timer batch_timer;
  std::size_t batches = 0;
  Database::LoadProgress progress = [&](std::size_t triples_loaded,
                                        std::size_t batch_triples) {
    ++batches;
    if (!quiet) {
      double seconds = batch_timer.ElapsedSeconds();
      std::fprintf(stderr, "batch %zu: %zu triple(s) in %.1f ms (%.0f triples/s); "
                           "%zu loaded\n",
                   batches, batch_triples, seconds * 1e3,
                   Throughput(batch_triples, seconds), triples_loaded);
    }
    batch_timer.Reset();
  };
  Status loaded = db.LoadNTriplesFile(input_path, batch_size, progress);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", input_path, loaded.ToString().c_str());
    return 1;
  }

  Status persisted = use_wal ? db.Checkpoint() : db.Save(output_path);
  if (!persisted.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", output_path, persisted.ToString().c_str());
    return 1;
  }

  ReportStatsSections(output_path);

  double total_seconds = total_timer.ElapsedSeconds();
  std::fprintf(stderr, "%s: %zu triple(s), %zu batch commit(s) of <= %zu, "
                       "%.1f ms (%.0f triples/s)%s\n",
               output_path, db.size(), batches, batch_size, total_seconds * 1e3,
               Throughput(db.size(), total_seconds), use_wal ? ", wal" : "");
  // The engine accounted the run itself (commit sizes, delta builds,
  // WAL appends and fsyncs, checkpoint duration, snapshot bytes):
  // report its registry instead of re-deriving any of it here.
  std::fprintf(stderr, "-- metrics --\n%s", db.DumpMetrics().c_str());
  if (dump_trace) {
    // The most recent commit/checkpoint traces (newest first): per batch
    // one `commit` root with delta_build / publish-or-compact children,
    // plus wal.append/wal.fsync under --wal and the final checkpoint.
    std::fprintf(stdout, "%s\n", db.DumpTraces(8).c_str());
  }
  return 0;
}
