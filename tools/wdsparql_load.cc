/// \file
/// wdsparql_load: stream an N-Triples file into a single-file snapshot.
///
///   wdsparql_load <input.nt> <output.snap>
///
/// The bulk-load path for datasets that should never pay the full
/// in-memory `Database` footprint: lines stream off the file one at a
/// time into (TermPool, std::vector<Triple>), the permutation store is
/// built with one sort pass per index — no RdfGraph hash row store, no
/// per-triple delta machinery — and the snapshot is published with an
/// atomic rename. Query it with `query_tool --db <output.snap>` or
/// `Database::Open`.
///
/// Exit status: 0 on success, 1 on user/parse/write error.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "engine/indexed_store.h"
#include "rdf/ntriples.h"
#include "storage/snapshot.h"
#include "wdsparql/term.h"
#include "wdsparql/triple.h"

using namespace wdsparql;

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: wdsparql_load <input.nt> <output.snap>\n");
    return 1;
  }
  const char* input_path = argv[1];
  const char* output_path = argv[2];

  auto start = std::chrono::steady_clock::now();
  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", input_path);
    return 1;
  }
  TermPool pool;
  std::vector<Triple> triples;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::optional<Triple> triple;
    Status parsed = ParseNTriplesLine(line, line_number, &pool, &triple);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", input_path, parsed.ToString().c_str());
      return 1;
    }
    if (triple.has_value()) triples.push_back(*triple);
  }
  if (in.bad()) {
    std::fprintf(stderr, "error: read failure on %s\n", input_path);
    return 1;
  }

  IndexedStore store = IndexedStore::Build(triples);
  Status written = storage::WriteSnapshot(output_path, pool, store);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", output_path, written.ToString().c_str());
    return 1;
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  std::fprintf(stderr, "%s: %zu triple(s), %zu term(s), %lld ms\n", output_path,
               store.size(), store.dictionary().size(),
               static_cast<long long>(elapsed.count()));
  return 0;
}
