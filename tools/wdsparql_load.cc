/// \file
/// wdsparql_load: stream an N-Triples file into a single-file snapshot.
///
///   wdsparql_load [--batch-size N] [--wal] <input.nt> <output.snap>
///
/// The bulk-load path, built on the public `WriteBatch` API — the exact
/// ingestion machinery `Database::Apply` serves, no bespoke loader-only
/// code path: lines stream off the file one at a time, accumulate into
/// a `WriteBatch`, and every `--batch-size` triples (default 4096) the
/// batch commits as ONE merged delta build and ONE view publish.
/// Memory stays bounded by one batch plus the store itself.
///
/// Two durability modes:
///   * default — ingest into an in-memory database, then write the
///     snapshot once at the end (atomic rename);
///   * --wal   — open <output.snap> with write-ahead logging
///     (create_if_missing) so every committed batch is durable as one
///     CRC-framed group record *before* it applies, then fold the log
///     into the snapshot with a final Checkpoint. Killing the loader
///     mid-run loses at most the in-flight batch: a reopen replays
///     exactly the committed groups, all-or-nothing each.
///
/// Query the result with `query_tool --db <output.snap>` or
/// `Database::Open`.
///
/// Exit status: 0 on success, 1 on user/parse/write error.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "wdsparql/wdsparql.h"

using namespace wdsparql;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: wdsparql_load [--batch-size N] [--wal] <input.nt> "
               "<output.snap>\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t batch_size = 4096;
  bool use_wal = false;
  const char* input_path = nullptr;
  const char* output_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1) return Usage();
      batch_size = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(argv[i], "--wal") == 0) {
      use_wal = true;
    } else if (input_path == nullptr) {
      input_path = argv[i];
    } else if (output_path == nullptr) {
      output_path = argv[i];
    } else {
      return Usage();
    }
  }
  if (input_path == nullptr || output_path == nullptr) return Usage();

  auto start = std::chrono::steady_clock::now();

  Database db;
  if (use_wal) {
    OpenOptions options;
    options.durability = Durability::kWal;
    options.create_if_missing = true;
    Result<Database> opened = Database::Open(output_path, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", output_path,
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(opened).value();
  }
  uint64_t before = db.generation();

  // The streaming batch loader IS the library's: one WriteBatch commit
  // (one delta build, one publish, one WAL group) per batch_size
  // triples, at most one batch buffered.
  Status loaded = db.LoadNTriplesFile(input_path, batch_size);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", input_path, loaded.ToString().c_str());
    return 1;
  }
  uint64_t publishes = db.generation() - before;  // == non-empty commits.

  Status persisted = use_wal ? db.Checkpoint() : db.Save(output_path);
  if (!persisted.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", output_path, persisted.ToString().c_str());
    return 1;
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  std::fprintf(stderr,
               "%s: %zu triple(s), %llu batch commit(s) of <= %zu, %lld ms%s\n",
               output_path, db.size(),
               static_cast<unsigned long long>(publishes), batch_size,
               static_cast<long long>(elapsed.count()), use_wal ? ", wal" : "");
  return 0;
}
