#!/bin/sh
# Include-hygiene check for the stable public surface.
#
# Headers under include/wdsparql/ are the supported API: they may include
# other wdsparql/ headers and the standard library, but never src/-internal
# headers (which would leak engine internals into the ABI surface and break
# out-of-tree consumers that only ship include/).
#
# Usage: tools/check_include_hygiene.sh [repo-root]
# Exit status: 0 clean, 1 violations found.

set -u
root="${1:-$(dirname "$0")/..}"
public_dir="$root/include/wdsparql"

if [ ! -d "$public_dir" ]; then
  echo "check_include_hygiene: missing $public_dir" >&2
  exit 1
fi

status=0
for header in "$public_dir"/*.h; do
  # Every quoted include must resolve inside wdsparql/.
  bad=$(grep -n '#include "' "$header" | grep -v '#include "wdsparql/' || true)
  if [ -n "$bad" ]; then
    echo "include-hygiene violation in $header:" >&2
    echo "$bad" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "include hygiene OK: public headers include only wdsparql/ and <std>"
fi
exit $status
