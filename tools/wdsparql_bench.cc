/// \file
/// wdsparql_bench: a load generator for the HTTP serving front door.
///
///   wdsparql_bench [--db <path.snap> | --synthetic N | --url HOST:PORT]
///                  [--duration-s D] [--threads T] [--rate R]
///                  [--write-frac F] [--query TEXT] [--limit N]
///                  [--deadline-ms N] [--workers N] [--queue N]
///
/// Drives a mixed read/write HTTP load and reports latency percentiles
/// (p50 / p95 / p99), throughput and the server's shed count. Three
/// targets:
///   * --db <path.snap>   starts an in-process `server::Server` over the
///     snapshot on an ephemeral port and benches that (the default
///     end-to-end mode: real sockets, real chunked streaming);
///   * --synthetic N      same, over a generated N-triple database —
///     self-contained smoke benching with zero setup;
///   * --url HOST:PORT    benches an externally running wdsparql_serve.
///
/// Load model:
///   * closed loop (default): `--threads` clients issue
///     request-after-response back to back for `--duration-s`;
///   * open loop (`--rate R` > 0): arrivals are scheduled at R requests
///     per second spread across the threads, and each latency is
///     measured FROM THE SCHEDULED ARRIVAL — a stalled server accrues
///     queueing delay instead of silently slowing the generator
///     (coordinated omission stays visible).
///
/// A `--write-frac F` slice of requests POST a small unique N-Triples
/// batch to /write; the rest POST `--query` to /query (with `limit` /
/// `deadline_ms` attached when given). 503-shed responses are counted
/// separately and excluded from the latency distribution.
///
/// Exit status: 0 when the run completed, 1 on bad flags / setup.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/http_client.h"
#include "server/server.h"
#include "wdsparql/wdsparql.h"

using namespace wdsparql;
using Clock = std::chrono::steady_clock;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: wdsparql_bench [--db <path.snap> | --synthetic N | --url "
      "HOST:PORT]\n"
      "                      [--duration-s D] [--threads T] [--rate R]\n"
      "                      [--write-frac F] [--query TEXT] [--limit N]\n"
      "                      [--deadline-ms N] [--workers N] [--queue N]\n"
      "\n"
      "  --db <path.snap>  bench an in-process server over this snapshot\n"
      "  --synthetic N     bench an in-process server over N generated "
      "triples\n"
      "  --url HOST:PORT   bench an external wdsparql_serve\n"
      "  --duration-s D    run length in seconds (default 5)\n"
      "  --threads T       client threads (default 4)\n"
      "  --rate R          open-loop arrivals/s across all threads "
      "(default 0\n"
      "                    = closed loop)\n"
      "  --write-frac F    fraction of requests that POST /write "
      "(default 0)\n"
      "  --query TEXT      query text (default \"(?s ?p ?o)\")\n"
      "  --limit N         attach ?limit=N to queries\n"
      "  --deadline-ms N   attach ?deadline_ms=N to queries\n"
      "  --workers N       in-process server worker threads (default 4)\n"
      "  --queue N         in-process server admission queue (default 64)\n");
  return 1;
}

struct BenchConfig {
  const char* db_path = nullptr;
  unsigned long synthetic = 0;
  std::string url_host;
  uint16_t url_port = 0;
  bool external = false;
  double duration_s = 5.0;
  int threads = 4;
  double rate = 0.0;  // 0 = closed loop.
  double write_frac = 0.0;
  std::string query = "(?s ?p ?o)";
  unsigned long limit = 0;
  unsigned long deadline_ms = 0;
  int workers = 4;
  unsigned long queue = 64;
};

/// Per-thread run record: latencies in ns (successful requests only,
/// split by class) plus status-code tallies.
struct ThreadResult {
  std::vector<uint64_t> read_ns;
  std::vector<uint64_t> write_ns;
  uint64_t shed_503 = 0;
  uint64_t http_errors = 0;  // Non-2xx, non-503.
  uint64_t io_errors = 0;    // Connect/transport failures.
};

bool ParseUlong(const char* text, unsigned long* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long value = std::strtoul(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

uint64_t Percentile(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

void ReportClass(const char* name, std::vector<uint64_t>* ns, double seconds) {
  std::sort(ns->begin(), ns->end());
  std::fprintf(stderr,
               "  %-6s %8zu ok  %9.1f req/s  p50 %8.3f ms  p95 %8.3f ms  "
               "p99 %8.3f ms  max %8.3f ms\n",
               name, ns->size(),
               seconds > 0 ? static_cast<double>(ns->size()) / seconds : 0.0,
               Percentile(*ns, 50) / 1e6, Percentile(*ns, 95) / 1e6,
               Percentile(*ns, 99) / 1e6,
               (ns->empty() ? 0 : ns->back()) / 1e6);
}

/// Deterministic per-thread mix decision (xorshift; no global RNG, no
/// cross-thread coordination).
struct Mix {
  uint64_t state;
  explicit Mix(uint64_t seed) : state(seed * 2654435761u + 1) {}
  double Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) / 9007199254740992.0;  // [0,1)
  }
};

void RunClient(const BenchConfig& config, const server::HttpClient& client,
               int thread_index, Clock::time_point start,
               Clock::time_point stop_at, ThreadResult* result) {
  // The /query target is fixed per run; /write bodies are unique per
  // request so every commit really mutates.
  std::string query_target = "/query";
  char sep = '?';
  if (config.limit != 0) {
    query_target += sep;
    query_target += "limit=" + std::to_string(config.limit);
    sep = '&';
  }
  if (config.deadline_ms != 0) {
    query_target += sep;
    query_target += "deadline_ms=" + std::to_string(config.deadline_ms);
  }
  Mix mix(static_cast<uint64_t>(thread_index) + 0x9e3779b9u);
  // Open-loop pacing: this thread owns arrivals i*threads+thread_index
  // of the global schedule at `rate` per second.
  double interval_s =
      config.rate > 0 ? static_cast<double>(config.threads) / config.rate : 0;
  uint64_t sequence = 0;

  while (true) {
    Clock::time_point issued = Clock::now();
    if (config.rate > 0) {
      auto scheduled =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          (static_cast<double>(sequence) + thread_index /
                           static_cast<double>(config.threads)) * interval_s));
      if (scheduled >= stop_at) break;
      std::this_thread::sleep_until(scheduled);
      issued = scheduled;  // Latency from intended arrival, not send.
    } else if (issued >= stop_at) {
      break;
    }

    bool is_write = config.write_frac > 0 && mix.Next() < config.write_frac;
    server::HttpResponse response;
    Status status;
    if (is_write) {
      std::string body = "<http://bench/s/" + std::to_string(thread_index) +
                         "_" + std::to_string(sequence) +
                         "> <http://bench/p/touched> <http://bench/o> .\n";
      status = client.Post("/write", body, &response);
    } else {
      status = client.Post(query_target, config.query, &response);
    }
    uint64_t elapsed_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             issued)
            .count());
    ++sequence;
    if (!status.ok()) {
      ++result->io_errors;
      continue;
    }
    if (response.status == 503) {
      ++result->shed_503;
      continue;  // Shed responses are not service latencies.
    }
    if (response.status < 200 || response.status >= 300) {
      ++result->http_errors;
      continue;
    }
    (is_write ? result->write_ns : result->read_ns).push_back(elapsed_ns);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  int target_modes = 0;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* text = nullptr;
    if (std::strcmp(argv[i], "--db") == 0) {
      if ((config.db_path = value("--db")) == nullptr) return Usage();
      ++target_modes;
    } else if (std::strcmp(argv[i], "--synthetic") == 0) {
      if ((text = value("--synthetic")) == nullptr ||
          !ParseUlong(text, &config.synthetic) || config.synthetic == 0) {
        std::fprintf(stderr, "error: bad --synthetic value\n");
        return Usage();
      }
      ++target_modes;
    } else if (std::strcmp(argv[i], "--url") == 0) {
      if ((text = value("--url")) == nullptr) return Usage();
      const char* colon = std::strrchr(text, ':');
      unsigned long port = 0;
      if (colon == nullptr || colon == text || !ParseUlong(colon + 1, &port) ||
          port == 0 || port > 65535) {
        std::fprintf(stderr, "error: --url wants HOST:PORT\n");
        return Usage();
      }
      config.url_host.assign(text, static_cast<std::size_t>(colon - text));
      config.url_port = static_cast<uint16_t>(port);
      config.external = true;
      ++target_modes;
    } else if (std::strcmp(argv[i], "--duration-s") == 0) {
      if ((text = value("--duration-s")) == nullptr ||
          !ParseDouble(text, &config.duration_s) || config.duration_s <= 0) {
        std::fprintf(stderr, "error: bad --duration-s value\n");
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      unsigned long threads = 0;
      if ((text = value("--threads")) == nullptr ||
          !ParseUlong(text, &threads) || threads < 1 || threads > 512) {
        std::fprintf(stderr, "error: bad --threads value\n");
        return Usage();
      }
      config.threads = static_cast<int>(threads);
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      if ((text = value("--rate")) == nullptr ||
          !ParseDouble(text, &config.rate) || config.rate < 0) {
        std::fprintf(stderr, "error: bad --rate value\n");
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--write-frac") == 0) {
      if ((text = value("--write-frac")) == nullptr ||
          !ParseDouble(text, &config.write_frac) || config.write_frac < 0 ||
          config.write_frac > 1) {
        std::fprintf(stderr, "error: bad --write-frac value (want [0,1])\n");
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--query") == 0) {
      if ((text = value("--query")) == nullptr) return Usage();
      config.query = text;
    } else if (std::strcmp(argv[i], "--limit") == 0) {
      if ((text = value("--limit")) == nullptr ||
          !ParseUlong(text, &config.limit)) {
        std::fprintf(stderr, "error: bad --limit value\n");
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if ((text = value("--deadline-ms")) == nullptr ||
          !ParseUlong(text, &config.deadline_ms)) {
        std::fprintf(stderr, "error: bad --deadline-ms value\n");
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      unsigned long workers = 0;
      if ((text = value("--workers")) == nullptr ||
          !ParseUlong(text, &workers) || workers < 1 || workers > 1024) {
        std::fprintf(stderr, "error: bad --workers value\n");
        return Usage();
      }
      config.workers = static_cast<int>(workers);
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      if ((text = value("--queue")) == nullptr ||
          !ParseUlong(text, &config.queue) || config.queue < 1) {
        std::fprintf(stderr, "error: bad --queue value\n");
        return Usage();
      }
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (target_modes > 1) {
    std::fprintf(stderr,
                 "error: --db, --synthetic and --url are mutually "
                 "exclusive\n");
    return Usage();
  }
  if (target_modes == 0) config.synthetic = 10'000;  // Self-contained default.

  // Target setup: external URL, or an in-process server on port 0.
  Database db;
  std::unique_ptr<server::Server> httpd;
  std::string host = config.url_host;
  uint16_t port = config.url_port;
  if (!config.external) {
    if (config.db_path != nullptr) {
      Result<Database> opened = Database::Open(config.db_path);
      if (!opened.ok()) {
        std::fprintf(stderr, "error: %s: %s\n", config.db_path,
                     opened.status().ToString().c_str());
        return 1;
      }
      db = std::move(opened).value();
    } else {
      // Synthetic corpus: a plausible join shape — s/p/o reuse makes
      // patterns selective without being empty.
      std::string triples;
      triples.reserve(config.synthetic * 48);
      for (unsigned long i = 0; i < config.synthetic; ++i) {
        triples += "<http://bench/s/" + std::to_string(i % 997) +
                   "> <http://bench/p/" + std::to_string(i % 13) +
                   "> <http://bench/o/" + std::to_string(i) + "> .\n";
      }
      Status loaded = db.LoadNTriples(triples);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: synthetic load: %s\n",
                     loaded.ToString().c_str());
        return 1;
      }
    }
    server::ServerOptions server_options;
    server_options.port = 0;
    server_options.num_workers = config.workers;
    server_options.queue_capacity = config.queue;
    if (config.deadline_ms != 0) {
      server_options.default_deadline_ms = config.deadline_ms;
    }
    httpd = std::make_unique<server::Server>(&db, server_options);
    Status started = httpd->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
      return 1;
    }
    host = "127.0.0.1";
    port = httpd->port();
    std::fprintf(stderr,
                 "wdsparql_bench: in-process server on 127.0.0.1:%u over "
                 "%zu triple(s), %d worker(s), queue %lu\n",
                 port, db.size(), config.workers, config.queue);
  } else {
    std::fprintf(stderr, "wdsparql_bench: external target %s:%u\n",
                 host.c_str(), port);
  }

  std::fprintf(stderr,
               "wdsparql_bench: %s loop, %d thread(s), %.1f s, "
               "write-frac %.2f, query \"%s\"\n",
               config.rate > 0 ? "open" : "closed", config.threads,
               config.duration_s, config.write_frac, config.query.c_str());
  if (config.rate > 0) {
    std::fprintf(stderr, "wdsparql_bench: target rate %.1f req/s\n",
                 config.rate);
  }

  server::HttpClient client(host, port, /*timeout_ms=*/30'000);
  std::vector<ThreadResult> results(static_cast<std::size_t>(config.threads));
  std::vector<std::thread> clients;
  Clock::time_point start = Clock::now();
  Clock::time_point stop_at =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(config.duration_s));
  clients.reserve(static_cast<std::size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    clients.emplace_back([&, t] {
      RunClient(config, client, t, start, stop_at,
                &results[static_cast<std::size_t>(t)]);
    });
  }
  for (std::thread& thread : clients) thread.join();
  double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Merge per-thread records and report.
  std::vector<uint64_t> read_ns;
  std::vector<uint64_t> write_ns;
  uint64_t shed = 0, http_errors = 0, io_errors = 0;
  for (const ThreadResult& r : results) {
    read_ns.insert(read_ns.end(), r.read_ns.begin(), r.read_ns.end());
    write_ns.insert(write_ns.end(), r.write_ns.begin(), r.write_ns.end());
    shed += r.shed_503;
    http_errors += r.http_errors;
    io_errors += r.io_errors;
  }
  uint64_t total =
      read_ns.size() + write_ns.size() + shed + http_errors + io_errors;
  std::fprintf(stderr, "\nwdsparql_bench: %llu request(s) in %.2f s "
                       "(%.1f req/s overall)\n",
               static_cast<unsigned long long>(total), elapsed_s,
               elapsed_s > 0 ? static_cast<double>(total) / elapsed_s : 0.0);
  ReportClass("read", &read_ns, elapsed_s);
  if (config.write_frac > 0) ReportClass("write", &write_ns, elapsed_s);
  std::fprintf(stderr,
               "  shed   %8llu 503(s)   errors %llu http, %llu transport\n",
               static_cast<unsigned long long>(shed),
               static_cast<unsigned long long>(http_errors),
               static_cast<unsigned long long>(io_errors));

  if (httpd != nullptr) {
    httpd->Stop();
    std::fprintf(stderr, "-- server metrics --\n%s",
                 db.DumpMetrics(MetricsFormat::kText).c_str());
  }
  return 0;
}
