/// \file
/// wdsparql_serve: the HTTP serving front door over one database.
///
///   wdsparql_serve [--db <path.snap>] [--wal] [--host H] [--port N]
///                  [--workers N] [--queue N] [--deadline-ms N]
///                  [--max-parallelism N] [--slow-query-ms N]
///                  [--trace-capacity N] [--quiet]
///
/// Serves the endpoints documented in docs/SERVING.md (POST /query with
/// chunked row streaming, POST /contains, POST /write, GET /metrics,
/// GET /healthz) from a fixed worker pool with a bounded admission
/// queue — overload answers 503 + Retry-After instead of queueing
/// unboundedly, and every query runs under a hard deadline.
///
/// Storage modes:
///   * --db <path.snap>         opens (or with --wal creates) the
///     single-file snapshot; --wal additionally write-ahead-logs every
///     /write commit so a crash loses nothing that was acknowledged.
///   * no --db                  an ephemeral in-memory database (demos
///     and tests; nothing survives exit).
///
/// Shutdown: SIGTERM / SIGINT trigger a graceful drain — the listener
/// closes first, queued and in-flight requests (including mid-stream
/// query responses) finish, then a database opened from --db is
/// checkpointed and the process exits 0. A second signal while draining
/// exits immediately.
///
/// Exit status: 0 on clean drain, 1 on bad flags / open / bind /
/// checkpoint errors.

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"
#include "wdsparql/wdsparql.h"

using namespace wdsparql;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: wdsparql_serve [--db <path.snap>] [--wal] [--host H] "
               "[--port N]\n"
               "                      [--workers N] [--queue N] "
               "[--deadline-ms N]\n"
               "                      [--max-parallelism N] [--slow-query-ms N] "
               "[--trace-capacity N]\n"
               "                      [--quiet]\n"
               "\n"
               "  --db <path.snap>  open this snapshot (with --wal: create if "
               "missing,\n"
               "                    WAL-log writes, checkpoint on drain)\n"
               "  --host H          bind address (default 127.0.0.1)\n"
               "  --port N          TCP port, 0 = ephemeral (default 8080)\n"
               "  --workers N       worker threads (default 4)\n"
               "  --queue N         admission queue capacity (default 64)\n"
               "  --max-parallelism N  ceiling on per-query ?parallelism= "
               "worker\n"
               "                    threads (default 8, 0 disables)\n"
               "  --deadline-ms N   hard per-query deadline ceiling, 0 = "
               "unbounded\n"
               "                    (default 10000)\n"
               "  --slow-query-ms N log queries taking >= N ms as one JSON "
               "line with\n"
               "                    the captured EXPLAIN (0 logs every query; "
               "default off)\n"
               "  --trace-capacity N  flight-recorder span ring capacity "
               "(default 4096,\n"
               "                    0 disables request tracing)\n"
               "  --quiet           suppress the per-request access log\n");
  return 1;
}

// Self-pipe: the signal handler performs exactly one async-signal-safe
// write; the main thread blocks on the read end and runs the drain.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 0;
  // A full pipe just means a signal is already pending; nothing to do.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Strict numeric flag value: the whole argument must parse.
bool ParseUint(const char* text, unsigned long* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long value = std::strtoul(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* db_path = nullptr;
  bool use_wal = false;
  unsigned long trace_capacity = TraceRecorder::kDefaultCapacity;
  server::ServerOptions options;
  options.port = 8080;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    unsigned long parsed = 0;
    if (std::strcmp(argv[i], "--db") == 0) {
      if ((db_path = value("--db")) == nullptr) return Usage();
    } else if (std::strcmp(argv[i], "--wal") == 0) {
      use_wal = true;
    } else if (std::strcmp(argv[i], "--host") == 0) {
      const char* host = value("--host");
      if (host == nullptr) return Usage();
      options.host = host;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      const char* text = value("--port");
      if (text == nullptr || !ParseUint(text, &parsed) || parsed > 65535) {
        std::fprintf(stderr, "error: bad --port value\n");
        return Usage();
      }
      options.port = static_cast<uint16_t>(parsed);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      const char* text = value("--workers");
      if (text == nullptr || !ParseUint(text, &parsed) || parsed < 1 ||
          parsed > 1024) {
        std::fprintf(stderr, "error: bad --workers value\n");
        return Usage();
      }
      options.num_workers = static_cast<int>(parsed);
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      const char* text = value("--queue");
      if (text == nullptr || !ParseUint(text, &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: bad --queue value\n");
        return Usage();
      }
      options.queue_capacity = parsed;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      const char* text = value("--deadline-ms");
      if (text == nullptr || !ParseUint(text, &parsed)) {
        std::fprintf(stderr, "error: bad --deadline-ms value\n");
        return Usage();
      }
      options.default_deadline_ms = parsed;
    } else if (std::strcmp(argv[i], "--max-parallelism") == 0) {
      const char* text = value("--max-parallelism");
      if (text == nullptr || !ParseUint(text, &parsed)) {
        std::fprintf(stderr, "error: bad --max-parallelism value\n");
        return Usage();
      }
      options.max_parallelism = static_cast<uint32_t>(parsed);
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0) {
      const char* text = value("--slow-query-ms");
      if (text == nullptr || !ParseUint(text, &parsed)) {
        std::fprintf(stderr, "error: bad --slow-query-ms value\n");
        return Usage();
      }
      options.slow_query_ms = static_cast<int64_t>(parsed);
    } else if (std::strcmp(argv[i], "--trace-capacity") == 0) {
      const char* text = value("--trace-capacity");
      if (text == nullptr || !ParseUint(text, &parsed)) {
        std::fprintf(stderr, "error: bad --trace-capacity value\n");
        return Usage();
      }
      trace_capacity = parsed;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      options.quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (use_wal && db_path == nullptr) {
    std::fprintf(stderr, "error: --wal requires --db\n");
    return Usage();
  }

  DatabaseOptions db_options;
  db_options.trace_capacity = trace_capacity;
  Database db(db_options);
  if (db_path != nullptr) {
    OpenOptions open_options;
    open_options.trace_capacity = trace_capacity;
    if (use_wal) {
      open_options.durability = Durability::kWal;
      open_options.create_if_missing = true;
    }
    Result<Database> opened = Database::Open(db_path, open_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", db_path,
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(opened).value();
    std::fprintf(stderr, "wdsparql_serve: opened %s (%zu triple(s)%s)\n",
                 db_path, db.size(), use_wal ? ", wal" : "");
  } else {
    std::fprintf(stderr, "wdsparql_serve: ephemeral in-memory database\n");
  }

  // Install the drain signals before Start so an immediate SIGTERM (a
  // supervisor racing the bind) still drains instead of killing us.
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  server::Server httpd(&db, options);
  Status started = httpd.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wdsparql_serve: listening on %s:%u\n",
               options.host.c_str(), httpd.port());

  // Block until a drain signal arrives (EINTR restarts the wait).
  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::fprintf(stderr, "wdsparql_serve: draining...\n");
  httpd.Stop();
  if (db_path != nullptr) {
    // Fold the WAL (or just persist the in-memory state the snapshot
    // mode accumulated) so a restart reopens exactly what was served.
    Status persisted = use_wal ? db.Checkpoint() : db.Save(db_path);
    if (!persisted.ok()) {
      std::fprintf(stderr, "error: checkpoint: %s\n",
                   persisted.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wdsparql_serve: checkpointed %s (%zu triple(s))\n",
                 db_path, db.size());
  }
  std::fprintf(stderr, "wdsparql_serve: clean exit\n");
  return 0;
}
