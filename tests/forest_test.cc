#include <gtest/gtest.h>

#include "ptree/forest.h"
#include "ptree/semantics.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "support/testlib.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class ForestTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const char* text) {
    auto result = ParsePattern(text, &pool_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  }

  TermPool pool_;
};

TEST_F(ForestTest, TripleBecomesSingleNodeTree) {
  auto tree = BuildPatternTree(Parse("(?x p ?y)"), pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().NumNodes(), 1);
  EXPECT_EQ(tree.value().pattern(0).size(), 1u);
}

TEST_F(ForestTest, AndMergesIntoRoot) {
  auto tree = BuildPatternTree(Parse("(?x p ?y) AND (?y q ?z) AND (?z r ?x)"), pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().NumNodes(), 1);
  EXPECT_EQ(tree.value().pattern(0).size(), 3u);
}

TEST_F(ForestTest, OptBecomesChild) {
  auto tree = BuildPatternTree(Parse("(?x p ?y) OPT (?y q ?z)"), pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().NumNodes(), 2);
  EXPECT_EQ(tree.value().children(0).size(), 1u);
}

TEST_F(ForestTest, NestedOptStructure) {
  // ((t1 OPT t2) OPT t3): both optional blocks hang off the root.
  auto tree =
      BuildPatternTree(Parse("((?x p ?y) OPT (?y q ?z)) OPT (?x r ?w)"), pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().NumNodes(), 3);
  EXPECT_EQ(tree.value().children(0).size(), 2u);
}

TEST_F(ForestTest, RightNestedOptMakesChain) {
  // t1 OPT (t2 OPT t3): chain root -> n -> m.
  auto tree =
      BuildPatternTree(Parse("(?x p ?y) OPT ((?y q ?z) OPT (?z r ?w))"), pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().NumNodes(), 3);
  ASSERT_EQ(tree.value().children(0).size(), 1u);
  NodeId mid = tree.value().children(0)[0];
  EXPECT_EQ(tree.value().children(mid).size(), 1u);
}

TEST_F(ForestTest, AndDistributesOverOptChildren) {
  // (t1 OPT t2) AND (t3 OPT t4): one root {t1, t3} with two children.
  auto tree = BuildPatternTree(
      Parse("((?x p ?y) OPT (?y q ?z)) AND ((?x r ?v) OPT (?v q ?u))"), pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().NumNodes(), 3);
  EXPECT_EQ(tree.value().pattern(0).size(), 2u);
  EXPECT_EQ(tree.value().children(0).size(), 2u);
}

TEST_F(ForestTest, PaperExample2Forest) {
  // wdpf(P) = {T1, T2} for P = P1 UNION ((?x,p,?y) OPT ((?z,q,?x) AND (?w,q,?z))).
  PatternPtr p1 = MakeExample1P1(&pool_);
  PatternPtr arm2 = Parse("(?x p ?y) OPT ((?z q ?x) AND (?w q ?z))");
  PatternPtr p = GraphPattern::MakeUnion(p1, arm2);
  auto forest = BuildPatternForest(p, pool_);
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest.value().trees.size(), 2u);
  // T1: root {(?x,p,?y)} with children {(?z,q,?x)} and the K2 block.
  const PatternTree& t1 = forest.value().trees[0];
  EXPECT_EQ(t1.NumNodes(), 3);
  EXPECT_EQ(t1.children(0).size(), 2u);
  // T2: root plus one child of two triples.
  const PatternTree& t2 = forest.value().trees[1];
  EXPECT_EQ(t2.NumNodes(), 2);
  EXPECT_EQ(t2.pattern(1).size(), 2u);
}

TEST_F(ForestTest, RejectsNonWellDesigned) {
  PatternPtr p2 = MakeExample1P2(&pool_);
  auto forest = BuildPatternForest(p2, pool_);
  ASSERT_FALSE(forest.ok());
  EXPECT_EQ(forest.status().code(), StatusCode::kNotWellDesigned);
}

TEST_F(ForestTest, RejectsUnionForSingleTree) {
  auto tree = BuildPatternTree(Parse("(?x p ?y) UNION (?x q ?y)"), pool_);
  EXPECT_FALSE(tree.ok());
}

TEST_F(ForestTest, TreesAreNrNormalForm) {
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    PatternPtr p = testlib::RandomWellDesignedUnion(&rng, &pool_, 2);
    auto forest = BuildPatternForest(p, pool_);
    ASSERT_TRUE(forest.ok());
    for (const PatternTree& tree : forest.value().trees) {
      EXPECT_TRUE(tree.IsNrNormalForm());
      EXPECT_TRUE(tree.Validate().ok());
    }
  }
}

TEST_F(ForestTest, NrRewriteDoesNotChangeSemantics) {
  // Compare JTKG between the NR tree and the raw (non-NR) tree on random
  // data, for a pattern with a redundant gate node.
  PatternPtr p = Parse("(?x p0 ?y) OPT ((?x p1 ?y) OPT (?y p0 ?z))");
  WdpfOptions raw_options;
  raw_options.nr_normal_form = false;
  auto raw = BuildPatternTree(p, pool_, raw_options);
  auto nr = BuildPatternTree(p, pool_);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(nr.ok());
  EXPECT_FALSE(raw.value().IsNrNormalForm());
  EXPECT_TRUE(nr.value().IsNrNormalForm());

  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 16, 2, &g);
    EXPECT_EQ(EnumerateTreeSolutions(raw.value(), g),
              EnumerateTreeSolutions(nr.value(), g))
        << "trial " << trial;
  }
}

TEST_F(ForestTest, WdpfPreservesSemanticsOnRandomPatterns) {
  // JPKG (AST semantics) == JFKG (Lemma 1 semantics over wdpf(P)).
  Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    PatternPtr p = testlib::RandomWellDesignedUnion(&rng, &pool_, 2);
    auto forest = BuildPatternForest(p, pool_);
    ASSERT_TRUE(forest.ok());
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 14, 3, &g);
    EXPECT_EQ(Evaluate(*p, g), EnumerateForestSolutions(forest.value(), g))
        << "trial " << trial << ": " << p->ToString(pool_);
  }
}

TEST_F(ForestTest, FkPatternMatchesFkForestShape) {
  for (int k = 2; k <= 3; ++k) {
    auto built = BuildPatternForest(MakeFkPattern(&pool_, k), pool_);
    ASSERT_TRUE(built.ok());
    PatternForest direct = MakeFkForest(&pool_, k);
    ASSERT_EQ(built.value().trees.size(), direct.trees.size());
    for (std::size_t i = 0; i < direct.trees.size(); ++i) {
      EXPECT_EQ(built.value().trees[i].NumNodes(), direct.trees[i].NumNodes());
      EXPECT_TRUE(built.value().trees[i].TreePattern() ==
                  direct.trees[i].TreePattern());
    }
  }
}

}  // namespace
}  // namespace wdsparql
