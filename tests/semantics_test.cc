#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/generator.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "support/testlib.h"

namespace wdsparql {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const char* text) {
    auto result = ParsePattern(text, &pool_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  }

  TermPool pool_;
};

TEST_F(SemanticsTest, TriplePatternMatchesByPosition) {
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("a", "p", "c");
  g.Insert("b", "q", "c");

  auto answers = Evaluate(*Parse("(a p ?y)"), g);
  EXPECT_EQ(answers.size(), 2u);

  answers = Evaluate(*Parse("(?x q ?y)"), g);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].Get(pool_.InternVariable("x")), pool_.InternIri("b"));
}

TEST_F(SemanticsTest, TripleWithRepeatedVariable) {
  RdfGraph g(&pool_);
  g.Insert("a", "p", "a");
  g.Insert("a", "p", "b");
  auto answers = Evaluate(*Parse("(?x p ?x)"), g);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].Get(pool_.InternVariable("x")), pool_.InternIri("a"));
}

TEST_F(SemanticsTest, FullyGroundTriple) {
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  auto hit = Evaluate(*Parse("(a p b)"), g);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_TRUE(hit[0].empty());  // The empty mapping.
  auto miss = Evaluate(*Parse("(a p c)"), g);
  EXPECT_TRUE(miss.empty());
}

TEST_F(SemanticsTest, AndIsJoin) {
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("b", "q", "c");
  g.Insert("b", "q", "d");
  auto answers = Evaluate(*Parse("(?x p ?y) AND (?y q ?z)"), g);
  EXPECT_EQ(answers.size(), 2u);
}

TEST_F(SemanticsTest, OptKeepsUnmatchedLeftSide) {
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("c", "p", "d");
  g.Insert("b", "q", "e");
  auto answers = Evaluate(*Parse("(?x p ?y) OPT (?y q ?z)"), g);
  // (a,b) extends with z=e; (c,d) survives unextended.
  ASSERT_EQ(answers.size(), 2u);
  bool saw_partial = false, saw_extended = false;
  for (const Mapping& mu : answers) {
    if (mu.size() == 2) saw_partial = true;
    if (mu.size() == 3) saw_extended = true;
  }
  EXPECT_TRUE(saw_partial);
  EXPECT_TRUE(saw_extended);
}

TEST_F(SemanticsTest, OptDoesNotKeepExtendableMapping) {
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("b", "q", "e");
  auto answers = Evaluate(*Parse("(?x p ?y) OPT (?y q ?z)"), g);
  // Only the extended mapping is an answer; the bare (a,b) is not.
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].size(), 3u);
}

TEST_F(SemanticsTest, UnionMergesAnswerSets) {
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("c", "q", "d");
  auto answers = Evaluate(*Parse("(?x p ?y) UNION (?x q ?y)"), g);
  EXPECT_EQ(answers.size(), 2u);
}

TEST_F(SemanticsTest, UnionDeduplicates) {
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  auto answers = Evaluate(*Parse("(?x p ?y) UNION (?x p ?y)"), g);
  EXPECT_EQ(answers.size(), 1u);
}

TEST_F(SemanticsTest, NestedOptBehaviour) {
  // The classic non-compositional SPARQL example shape:
  // ((x p y) OPT (y q z)) OPT (y r w).
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("b", "r", "c");
  auto answers = Evaluate(*Parse("((?x p ?y) OPT (?y q ?z)) OPT (?y r ?w)"), g);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].size(), 3u);  // x, y, w (no q-edge exists).
}

TEST_F(SemanticsTest, EvaluateContainsAgreesWithEvaluate) {
  Rng rng(99);
  RdfGraph g(&pool_);
  testlib::SmallWorkloadGraph(&rng, 6, 25, 3, &g);
  PatternPtr p = testlib::RandomWellDesignedPattern(&rng, &pool_);
  auto answers = Evaluate(*p, g);
  for (const Mapping& mu : answers) {
    EXPECT_TRUE(EvaluateContains(*p, g, mu));
  }
  // Probe some non-answers.
  for (const Mapping& probe : testlib::MembershipProbes(p, g, &rng, 10)) {
    bool expected =
        std::find(answers.begin(), answers.end(), probe) != answers.end();
    EXPECT_EQ(EvaluateContains(*p, g, probe), expected);
  }
}

TEST_F(SemanticsTest, OptOnSocialGraphProducesPartialAnswers) {
  RdfGraph g(&pool_);
  SocialGraphOptions options;
  options.num_people = 30;
  GenerateSocialGraph(options, &g);
  auto answers = Evaluate(*Parse("(?p type Person) OPT (?p email ?e)"), g);
  EXPECT_EQ(answers.size(), 30u);  // One answer per person.
  int partial = 0;
  for (const Mapping& mu : answers) {
    if (mu.size() == 1) ++partial;
  }
  EXPECT_GT(partial, 0) << "some people must lack email";
  EXPECT_LT(partial, 30) << "some people must have email";
}

TEST_F(SemanticsTest, EmptyGraphYieldsNoAnswers) {
  RdfGraph g(&pool_);
  EXPECT_TRUE(Evaluate(*Parse("(?x p ?y)"), g).empty());
  EXPECT_TRUE(Evaluate(*Parse("(?x p ?y) OPT (?y q ?z)"), g).empty());
}

}  // namespace
}  // namespace wdsparql
