#include <gtest/gtest.h>

#include "hom/pebble.h"
#include "ptree/tgraph.h"
#include "rdf/generator.h"
#include "support/testlib.h"

namespace wdsparql {
namespace {

class TGraphTest : public ::testing::Test {
 protected:
  TermId V(const char* name) { return pool_.InternVariable(name); }
  TermId I(const char* name) { return pool_.InternIri(name); }

  TermPool pool_;
};

TEST_F(TGraphTest, ConstructorTrimsAndSortsX) {
  TripleSet s;
  s.Insert(Triple(V("x"), I("p"), V("y")));
  // ?z does not occur in S: trimmed. Duplicates collapse. Result sorted.
  GeneralizedTGraph g(s, {V("y"), V("x"), V("z"), V("y")});
  EXPECT_EQ(g.X.size(), 2u);
  EXPECT_TRUE(std::is_sorted(g.X.begin(), g.X.end()));
  EXPECT_EQ(g.FreeVariables().size(), 0u);
}

TEST_F(TGraphTest, FreeVariablesExcludeX) {
  TripleSet s;
  s.Insert(Triple(V("x"), I("p"), V("y")));
  s.Insert(Triple(V("y"), I("p"), V("w")));
  GeneralizedTGraph g(s, {V("x")});
  std::vector<TermId> free_vars = g.FreeVariables();
  EXPECT_EQ(free_vars.size(), 2u);
}

TEST_F(TGraphTest, GaifmanGraphEdgesFromCooccurrence) {
  TripleSet s;
  s.Insert(Triple(V("a"), I("p"), V("b")));
  s.Insert(Triple(V("b"), I("p"), V("c")));
  s.Insert(Triple(V("a"), V("b"), V("c")));  // Variable predicate: 3 pairwise edges.
  GeneralizedTGraph g(s, {});
  std::vector<TermId> vars;
  UndirectedGraph gaifman = GaifmanGraph(g, &vars);
  EXPECT_EQ(gaifman.NumVertices(), 3);
  EXPECT_EQ(gaifman.NumEdges(), 3);  // a-b, b-c, a-c.
}

TEST_F(TGraphTest, GaifmanIgnoresConstantsAndX) {
  TripleSet s;
  s.Insert(Triple(V("a"), I("p"), I("c1")));
  s.Insert(Triple(V("a"), I("p"), V("x")));
  GeneralizedTGraph g(s, {V("x")});
  UndirectedGraph gaifman = GaifmanGraph(g);
  EXPECT_EQ(gaifman.NumVertices(), 1);
  EXPECT_EQ(gaifman.NumEdges(), 0);
}

TEST_F(TGraphTest, HomToRequiresMatchingX) {
  TripleSet s1, s2;
  s1.Insert(Triple(V("x"), I("p"), V("u")));
  s2.Insert(Triple(V("x"), I("p"), V("v")));
  s2.Insert(Triple(V("v"), I("q"), V("x")));
  GeneralizedTGraph g1(s1, {V("x")});
  GeneralizedTGraph g2(s2, {V("x")});
  EXPECT_TRUE(HomTo(g1, g2));   // u -> v.
  EXPECT_FALSE(HomTo(g2, g1));  // No q-triple available.
}

TEST_F(TGraphTest, HomToUnderRespectsMu) {
  TripleSet s;
  s.Insert(Triple(V("x"), I("p"), V("u")));
  GeneralizedTGraph g(s, {V("x")});
  RdfGraph graph(&pool_);
  graph.Insert("a", "p", "b");
  Mapping good = testlib::MakeMapping(&pool_, {{"x", "a"}});
  Mapping bad = testlib::MakeMapping(&pool_, {{"x", "b"}});
  EXPECT_TRUE(HomToUnder(g, good, graph.triples()));
  EXPECT_FALSE(HomToUnder(g, bad, graph.triples()));
}

TEST_F(TGraphTest, PebbleToUnderRelaxesHomToUnder) {
  // Wherever the exact test succeeds, the relaxation must too.
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    RdfGraph graph(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 12, 2, &graph);
    TripleSet s;
    s.Insert(Triple(V("x"), I("p0"), V("t")));
    s.Insert(Triple(V("t"), I("p1"), V("t2")));
    GeneralizedTGraph g(s, {V("x")});
    std::vector<TermId> domain = graph.Domain();
    if (domain.empty()) continue;
    Mapping mu;
    ASSERT_TRUE(mu.Bind(V("x"), domain[rng.NextBounded(domain.size())]));
    if (HomToUnder(g, mu, graph.triples())) {
      EXPECT_TRUE(PebbleToUnder(g, mu, graph.triples(), 2));
    }
  }
}

TEST_F(TGraphTest, ToStringListsTriplesAndX) {
  TripleSet s;
  s.Insert(Triple(V("x"), I("p"), V("y")));
  GeneralizedTGraph g(s, {V("x")});
  std::string text = ToString(g, pool_);
  EXPECT_NE(text.find("?x"), std::string::npos);
  EXPECT_NE(text.find("?y"), std::string::npos);
  EXPECT_NE(text.find("}, {"), std::string::npos);
}

// ---------------------------------------------------------------------
// Proposition 4: the two composition properties of the pebble game the
// Theorem 1 proof leans on.
// ---------------------------------------------------------------------

TEST_F(TGraphTest, Proposition4Item1HomThenGame) {
  // (S1,X) -> (S2,X) and (S2,X) ->mu_k G imply (S1,X) ->mu_k G.
  Rng rng(31337);
  for (int trial = 0; trial < 15; ++trial) {
    RdfGraph graph(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 14, 2, &graph);

    // S2: a random 3-triple pattern over {x, f1, f2}; S1: a "folded"
    // variant mapping into it (rename f2 -> f1), so (S1,X) -> (S2,X) by
    // construction... the direction needed is S1 -> S2; renaming f1,f2 of
    // S2 onto fresh g1 with possible merging gives S1 -> S2.
    TripleSet s2;
    TermId x = V("x");
    TermId f1 = V("f1"), f2 = V("f2");
    for (int i = 0; i < 3; ++i) {
      TermId subj = (i == 0) ? x : (rng.NextBernoulli(0.5) ? f1 : f2);
      TermId obj = rng.NextBernoulli(0.5) ? f1 : f2;
      s2.Insert(Triple(subj, I(("p" + std::to_string(rng.NextBounded(2))).c_str()), obj));
    }
    // S1 = image of S2 under {f1 -> g, f2 -> g}: folds into S2? No —
    // S1 maps INTO S2 only if g can go to one of f1/f2 consistently; by
    // construction g -> f1 works iff replacing f2 by f1 stays within S2.
    // Use the safe direction instead: S1 = a subset of S2.
    TripleSet s1;
    for (const Triple& t : s2.triples()) {
      if (s1.size() < 2) s1.Insert(t);
    }
    GeneralizedTGraph g1(s1, {x});
    GeneralizedTGraph g2(s2, {x});
    if (g1.X != g2.X) continue;  // x may be absent from the subset.
    ASSERT_TRUE(HomTo(g1, g2));  // Subsets embed.

    std::vector<TermId> domain = graph.Domain();
    if (domain.empty()) continue;
    Mapping mu;
    ASSERT_TRUE(mu.Bind(x, domain[rng.NextBounded(domain.size())]));
    for (int k = 1; k <= 3; ++k) {
      if (PebbleToUnder(g2, mu, graph.triples(), k)) {
        EXPECT_TRUE(PebbleToUnder(g1, mu, graph.triples(), k))
            << "trial " << trial << " k " << k;
      }
    }
  }
}

TEST_F(TGraphTest, Proposition4Item2DisjointUnion) {
  // If (Si,X) ->mu_k G for all i and the Si share no free variables,
  // then (S1 u ... u Sl, X) ->mu_k G.
  Rng rng(777111);
  for (int trial = 0; trial < 15; ++trial) {
    RdfGraph graph(&pool_);
    testlib::SmallWorkloadGraph(&rng, 5, 20, 2, &graph);
    TermId x = V("x");
    std::vector<TermId> domain = graph.Domain();
    if (domain.empty()) continue;
    Mapping mu;
    ASSERT_TRUE(mu.Bind(x, domain[rng.NextBounded(domain.size())]));

    TripleSet combined;
    bool all_win = true;
    for (int part = 0; part < 3; ++part) {
      TripleSet s;
      TermId a = V(("d" + std::to_string(trial) + "_" + std::to_string(part) + "a").c_str());
      TermId b = V(("d" + std::to_string(trial) + "_" + std::to_string(part) + "b").c_str());
      s.Insert(Triple(x, I("p0"), a));
      s.Insert(Triple(a, I("p1"), b));
      GeneralizedTGraph g(s, {x});
      if (!PebbleToUnder(g, mu, graph.triples(), 2)) all_win = false;
      combined.InsertAll(s);
    }
    if (!all_win) continue;
    GeneralizedTGraph whole(combined, {x});
    EXPECT_TRUE(PebbleToUnder(whole, mu, graph.triples(), 2)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace wdsparql
