#include <gtest/gtest.h>

#include "ptree/forest.h"
#include "sparql/parser.h"
#include "support/testlib.h"
#include "wd/branch_width.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class BranchWidthTest : public ::testing::Test {
 protected:
  PatternTree Tree(const char* text) {
    auto pattern = ParsePattern(text, &pool_);
    EXPECT_TRUE(pattern.ok());
    auto tree = BuildPatternTree(pattern.value(), pool_);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return std::move(tree).value();
  }

  TermPool pool_;
};

TEST_F(BranchWidthTest, SingleNodeTreeHasWidthOne) {
  EXPECT_EQ(BranchTreewidth(Tree("(?x p ?y) AND (?y p ?z)")), 1);
}

TEST_F(BranchWidthTest, SimpleOptChainHasWidthOne) {
  EXPECT_EQ(BranchTreewidth(Tree("(?x p ?y) OPT ((?y q ?z) OPT (?z r ?w))")), 1);
}

TEST_F(BranchWidthTest, BranchFamilyHasWidthOne) {
  // Section 3.2: bw(T'_k) = 1 — the branch core is just the self-loop.
  for (int k = 2; k <= 5; ++k) {
    EXPECT_EQ(BranchTreewidth(MakeBranchFamilyTree(&pool_, k)), 1) << "k=" << k;
  }
}

TEST_F(BranchWidthTest, CliqueBranchHasWidthKMinus1) {
  for (int k = 2; k <= 5; ++k) {
    EXPECT_EQ(BranchTreewidth(MakeCliqueBranchTree(&pool_, k)), std::max(k - 1, 1))
        << "k=" << k;
  }
}

TEST_F(BranchWidthTest, BranchWidthsReportPerNodeDetail) {
  PatternTree tree = MakeBranchFamilyTree(&pool_, 4);
  auto details = BranchWidths(tree);
  ASSERT_EQ(details.size(), 1u);
  EXPECT_EQ(details[0].node, 1);
  EXPECT_EQ(details[0].core_treewidth, 1);
  // The branch graph is S^br = pat(root) u pat(child) with X^br = {?y}.
  EXPECT_EQ(details[0].branch_graph.X.size(), 1u);
}

TEST_F(BranchWidthTest, DeepBranchAccumulatesAncestors) {
  // The branch of the grandchild includes the root's pattern: variables
  // of the root are distinguished for the grandchild's branch graph.
  PatternTree tree = Tree("(?x p ?y) OPT ((?y q ?z) OPT (?z q ?x2))");
  auto details = BranchWidths(tree);
  ASSERT_EQ(details.size(), 2u);
  // Grandchild branch: X^br = vars({(?x,p,?y), (?y,q,?z)}).
  EXPECT_EQ(details[1].branch_graph.X.size(), 3u);
}

TEST_F(BranchWidthTest, PatternLevelApi) {
  auto bw = BranchTreewidthOfPattern(MakeBranchFamilyPattern(&pool_, 4), pool_);
  ASSERT_TRUE(bw.ok());
  EXPECT_EQ(bw.value(), 1);

  auto clique_bw = BranchTreewidthOfPattern(MakeCliqueBranchPattern(&pool_, 4), pool_);
  ASSERT_TRUE(clique_bw.ok());
  EXPECT_EQ(clique_bw.value(), 3);

  // UNION patterns are rejected.
  auto pattern = ParsePattern("(?x p ?y) UNION (?x q ?y)", &pool_);
  ASSERT_TRUE(pattern.ok());
  EXPECT_FALSE(BranchTreewidthOfPattern(pattern.value(), pool_).ok());
}

TEST_F(BranchWidthTest, GridBranchWidthTracksGridDimension) {
  // A tree whose child is a rigid grid pattern attached to the root: the
  // branch core treewidth equals the grid treewidth.
  for (int dim = 2; dim <= 3; ++dim) {
    GeneralizedTGraph grid = MakeRigidGrid(&pool_, dim, dim);
    TermId y = pool_.InternVariable("y");
    TermId link = pool_.InternIri("link");
    TripleSet root;
    root.Insert(Triple(y, link, y));
    PatternTree tree(std::move(root));
    TripleSet child = grid.S;
    child.Insert(Triple(y, link, pool_.InternVariable("g0_0")));
    tree.AddNode(tree.root(), std::move(child));
    EXPECT_EQ(BranchTreewidth(tree), dim) << dim << "x" << dim;
  }
}

}  // namespace
}  // namespace wdsparql
