#include "support/testlib.h"

#include <algorithm>

#include "rdf/generator.h"
#include "sparql/semantics.h"
#include "util/check.h"

namespace wdsparql {
namespace testlib {
namespace {

/// State shared across one pattern generation.
struct GenState {
  Rng* rng;
  TermPool* pool;
  const RandomPatternOptions* options;
  int fresh_counter = 0;

  TermId Predicate() {
    return pool->InternIri("p" + std::to_string(rng->NextBounded(
                                     options->num_predicates)));
  }
  TermId FreshVar() { return pool->InternVariable("f" + std::to_string(fresh_counter++)); }
};

/// A random conjunction over `vars` (every triple uses vars from the list;
/// subject/object are variables, predicate an IRI).
PatternPtr RandomConjunction(GenState* state, const std::vector<TermId>& vars) {
  int count = 1 + static_cast<int>(state->rng->NextBounded(
                      state->options->max_triples_per_node));
  std::vector<PatternPtr> leaves;
  for (int i = 0; i < count; ++i) {
    TermId s = vars[state->rng->NextBounded(vars.size())];
    TermId o = vars[state->rng->NextBounded(vars.size())];
    leaves.push_back(GraphPattern::MakeTriple(Triple(s, state->Predicate(), o)));
  }
  return GraphPattern::MakeAndAll(leaves);
}

PatternPtr GenRec(GenState* state, const std::vector<TermId>& scope, int depth) {
  PatternPtr base = RandomConjunction(state, scope);
  if (depth <= 0) return base;
  // Optional sides may only reuse variables that actually occur in this
  // level's base conjunction (not merely in the requested scope, and not
  // in sibling optional branches), plus fresh variables exclusive to the
  // subtree. This makes the pattern well designed by construction: for
  // every OPT (L OPT R) generated here, vars(R) \ vars(L) are fresh
  // variables that occur nowhere outside R.
  std::vector<TermId> usable = base->Variables();
  PatternPtr current = base;
  int opts = static_cast<int>(
      state->rng->NextBounded(state->options->max_opts_per_node + 1));
  for (int i = 0; i < opts; ++i) {
    if (!state->rng->NextBernoulli(state->options->opt_probability)) continue;
    std::vector<TermId> extended = usable;
    int fresh = 1 + static_cast<int>(state->rng->NextBounded(2));
    for (int f = 0; f < fresh; ++f) extended.push_back(state->FreshVar());
    current = GraphPattern::MakeOpt(current, GenRec(state, extended, depth - 1));
  }
  return current;
}

}  // namespace

PatternPtr RandomWellDesignedPattern(Rng* rng, TermPool* pool,
                                     const RandomPatternOptions& options) {
  GenState state{rng, pool, &options};
  // Give each generated pattern its own fresh-variable namespace so
  // UNION arms do not accidentally share optional variables.
  state.fresh_counter = static_cast<int>(rng->NextBounded(1 << 20)) * 64;
  std::vector<TermId> scope;
  for (int i = 0; i < options.scope_vars; ++i) {
    scope.push_back(pool->InternVariable("x" + std::to_string(i)));
  }
  return GenRec(&state, scope, options.max_depth);
}

PatternPtr RandomWellDesignedUnion(Rng* rng, TermPool* pool, int arms,
                                   const RandomPatternOptions& options) {
  WDSPARQL_CHECK(arms >= 1);
  std::vector<PatternPtr> operands;
  for (int i = 0; i < arms; ++i) {
    operands.push_back(RandomWellDesignedPattern(rng, pool, options));
  }
  return GraphPattern::MakeUnionAll(operands);
}

void SmallWorkloadGraph(Rng* rng, int num_nodes, int num_triples, int num_predicates,
                        RdfGraph* graph) {
  RandomGraphOptions options;
  options.num_nodes = num_nodes;
  options.num_predicates = num_predicates;
  options.num_triples = num_triples;
  options.seed = rng->Next();
  GenerateRandomGraph(options, graph);
}

Mapping MakeMapping(TermPool* pool,
                    const std::vector<std::pair<std::string, std::string>>& bindings) {
  Mapping mu;
  for (const auto& [var, iri] : bindings) {
    WDSPARQL_CHECK(mu.Bind(pool->InternVariable(var), pool->InternIri(iri)));
  }
  return mu;
}

std::vector<Mapping> MembershipProbes(const PatternPtr& pattern, const RdfGraph& graph,
                                      Rng* rng, int extra_random) {
  std::vector<Mapping> probes = Evaluate(*pattern, graph);
  std::vector<TermId> domain = graph.Domain();
  std::vector<Mapping> answers = probes;
  for (int i = 0; i < extra_random && !answers.empty() && !domain.empty(); ++i) {
    // Mutate a random answer: rebind one variable to a random IRI.
    const Mapping& base = answers[rng->NextBounded(answers.size())];
    Mapping mutated;
    const auto& bindings = base.bindings();
    if (bindings.empty()) continue;
    std::size_t flip = rng->NextBounded(bindings.size());
    for (std::size_t b = 0; b < bindings.size(); ++b) {
      TermId value = (b == flip) ? domain[rng->NextBounded(domain.size())]
                                 : bindings[b].second;
      WDSPARQL_CHECK(mutated.Bind(bindings[b].first, value));
    }
    probes.push_back(std::move(mutated));
  }
  return probes;
}

}  // namespace testlib
}  // namespace wdsparql
