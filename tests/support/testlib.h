#ifndef WDSPARQL_TESTS_SUPPORT_TESTLIB_H_
#define WDSPARQL_TESTS_SUPPORT_TESTLIB_H_

#include <string>
#include <vector>

#include "rdf/graph.h"
#include "sparql/ast.h"
#include "sparql/mapping.h"
#include "util/rng.h"

/// \file
/// Shared helpers for the test and benchmark executables: random
/// well-designed pattern generation (well designed *by construction*),
/// small workload graphs, and mapping factories.

namespace wdsparql {
namespace testlib {

/// Options for RandomWellDesignedPattern.
struct RandomPatternOptions {
  int max_depth = 3;            ///< Maximum OPT nesting depth.
  int max_triples_per_node = 3; ///< Conjunction size per block.
  int num_predicates = 3;       ///< Predicate pool ("p0", "p1", ...).
  int scope_vars = 3;           ///< Variables shared across the pattern root.
  double opt_probability = 0.7; ///< Chance of attaching an OPT at each level.
  int max_opts_per_node = 2;    ///< Fan-out bound.
};

/// Generates a random UNION-free well-designed pattern. Well-designedness
/// holds by construction: the right side of each OPT uses variables from
/// its left side plus globally-fresh variables never reused elsewhere.
PatternPtr RandomWellDesignedPattern(Rng* rng, TermPool* pool,
                                     const RandomPatternOptions& options = {});

/// A UNION of `arms` random well-designed patterns (well designed).
PatternPtr RandomWellDesignedUnion(Rng* rng, TermPool* pool, int arms,
                                   const RandomPatternOptions& options = {});

/// A small dense random graph suited to the random patterns above (same
/// predicate pool "p0..").
void SmallWorkloadGraph(Rng* rng, int num_nodes, int num_triples, int num_predicates,
                        RdfGraph* graph);

/// Builds a mapping from variable/IRI spelling pairs, e.g.
/// MakeMapping(&pool, {{"x", "a"}, {"y", "b"}}).
Mapping MakeMapping(TermPool* pool,
                    const std::vector<std::pair<std::string, std::string>>& bindings);

/// All candidate mappings over dom ⊆ vars(P) for membership testing:
/// the true answers plus `extra_random` mutated non-answers.
std::vector<Mapping> MembershipProbes(const PatternPtr& pattern, const RdfGraph& graph,
                                      Rng* rng, int extra_random);

}  // namespace testlib
}  // namespace wdsparql

#endif  // WDSPARQL_TESTS_SUPPORT_TESTLIB_H_
