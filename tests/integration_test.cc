#include <gtest/gtest.h>

#include <algorithm>

#include "ptree/forest.h"
#include "ptree/semantics.h"
#include "rdf/generator.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "sparql/well_designed.h"
#include "support/testlib.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/eval.h"
#include "wd/local_tractability.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

/// End-to-end pipeline: text -> pattern -> well-designedness -> forest ->
/// evaluation, with all three evaluators cross-checked.
TEST(IntegrationTest, FullPipelineOnSocialWorkload) {
  TermPool pool;
  RdfGraph g(&pool);
  SocialGraphOptions options;
  options.num_people = 25;
  options.seed = 11;
  GenerateSocialGraph(options, &g);

  auto pattern = ParsePattern(
      "((?p type Person) AND (?p livesIn ?c)) OPT ((?p email ?e) OPT (?p phone ?f))",
      &pool);
  ASSERT_TRUE(pattern.ok());
  ASSERT_TRUE(CheckWellDesigned(pattern.value(), pool).ok());

  auto forest = BuildPatternForest(pattern.value(), pool);
  ASSERT_TRUE(forest.ok());

  std::vector<Mapping> answers = Evaluate(*pattern.value(), g);
  EXPECT_EQ(answers.size(), 25u);  // Everyone has a city.

  for (const Mapping& mu : answers) {
    EXPECT_TRUE(NaiveWdEval(forest.value(), g, mu));
    EXPECT_TRUE(PebbleWdEval(forest.value(), g, mu, 1));
  }

  // Restrictions of answers (non-maximal mappings) are not answers.
  int rejected = 0;
  for (const Mapping& mu : answers) {
    if (mu.size() < 2) continue;
    Mapping truncated = mu.RestrictedTo(
        {pool.InternVariable("p"), pool.InternVariable("c")});
    if (std::find(answers.begin(), answers.end(), truncated) == answers.end()) {
      EXPECT_FALSE(NaiveWdEval(forest.value(), g, truncated));
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(IntegrationTest, ThreeEvaluatorsAgreeOnRandomWorkloads) {
  TermPool pool;
  Rng rng(90210);
  for (int trial = 0; trial < 12; ++trial) {
    PatternPtr p = testlib::RandomWellDesignedUnion(&rng, &pool, 2);
    auto forest = BuildPatternForest(p, pool);
    ASSERT_TRUE(forest.ok());
    RdfGraph g(&pool);
    testlib::SmallWorkloadGraph(&rng, 5, 16, 3, &g);

    std::vector<Mapping> ast_answers = Evaluate(*p, g);
    std::vector<Mapping> tree_answers = EnumerateForestSolutions(forest.value(), g);
    EXPECT_EQ(ast_answers, tree_answers);
    for (const Mapping& probe : testlib::MembershipProbes(p, g, &rng, 5)) {
      bool expected =
          std::find(ast_answers.begin(), ast_answers.end(), probe) != ast_answers.end();
      EXPECT_EQ(NaiveWdEval(forest.value(), g, probe), expected);
      if (PebbleWdEval(forest.value(), g, probe, 2)) {
        EXPECT_TRUE(expected) << "pebble acceptance must be sound";
      }
    }
  }
}

TEST(IntegrationTest, WidthReportForPaperFamilies) {
  // The paper's summary table, recomputed: F_k has dw 1 but local width
  // k-1; T'_k has bw 1 but local width k-1; the clique family has
  // everything equal to k-1.
  TermPool pool;
  const int k = 4;

  PatternForest fk = MakeFkForest(&pool, k);
  EXPECT_EQ(DominationWidth(fk, &pool).value(), 1);
  EXPECT_EQ(LocalWidth(fk), k - 1);

  PatternForest branch;
  branch.trees.push_back(MakeBranchFamilyTree(&pool, k));
  EXPECT_EQ(BranchTreewidth(branch.trees[0]), 1);
  EXPECT_EQ(DominationWidth(branch, &pool).value(), 1);
  EXPECT_EQ(LocalWidth(branch), k - 1);

  PatternForest clique;
  clique.trees.push_back(MakeCliqueBranchTree(&pool, k));
  EXPECT_EQ(BranchTreewidth(clique.trees[0]), k - 1);
  EXPECT_EQ(DominationWidth(clique, &pool).value(), k - 1);
  EXPECT_EQ(LocalWidth(clique), k - 1);
}

TEST(IntegrationTest, NTriplesRoundTripThroughEvaluation) {
  TermPool pool;
  RdfGraph g(&pool);
  ASSERT_TRUE(ParseNTriples("a p b .\n"
                            "b q c .\n"
                            "b q d .\n",
                            &g)
                  .ok());
  auto pattern = ParsePattern("(?x p ?y) OPT (?y q ?z)", &pool);
  ASSERT_TRUE(pattern.ok());
  std::vector<Mapping> answers = Evaluate(*pattern.value(), g);
  ASSERT_EQ(answers.size(), 2u);  // z = c and z = d.

  // Serialise and reload into a fresh pool: same answer count.
  std::string text = WriteNTriples(g);
  TermPool pool2;
  RdfGraph g2(&pool2);
  ASSERT_TRUE(ParseNTriples(text, &g2).ok());
  auto pattern2 = ParsePattern("(?x p ?y) OPT (?y q ?z)", &pool2);
  ASSERT_TRUE(pattern2.ok());
  EXPECT_EQ(Evaluate(*pattern2.value(), g2).size(), 2u);
}

TEST(IntegrationTest, PaperExample2EndToEnd) {
  // P = P1 UNION ((?x,p,?y) OPT ((?z,q,?x) AND (?w,q,?z))) — Example 2 —
  // evaluated on data exercising both arms.
  TermPool pool;
  PatternPtr p = GraphPattern::MakeUnion(
      MakeExample1P1(&pool),
      ParsePattern("(?x p ?y) OPT ((?z q ?x) AND (?w q ?z))", &pool).value());
  ASSERT_TRUE(CheckWellDesigned(p, pool).ok());
  auto forest = BuildPatternForest(p, pool);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest.value().trees.size(), 2u);

  RdfGraph g(&pool);
  g.Insert("a", "p", "b");
  g.Insert("c", "q", "a");
  g.Insert("b", "r", "m");
  g.Insert("m", "r", "n");

  std::vector<Mapping> answers = Evaluate(*p, g);
  std::vector<Mapping> via_forest = EnumerateForestSolutions(forest.value(), g);
  EXPECT_EQ(answers, via_forest);
  for (const Mapping& mu : answers) {
    EXPECT_TRUE(NaiveWdEval(forest.value(), g, mu));
    EXPECT_TRUE(PebbleWdEval(forest.value(), g, mu, 1));
  }
}

TEST(IntegrationTest, PromiseViolationOnlyEverRejects) {
  // Running the pebble algorithm with k far below dw must never accept a
  // non-answer (it may reject true answers). Clique family with k = 1.
  TermPool pool;
  PatternForest forest;
  forest.trees.push_back(MakeCliqueBranchTree(&pool, 4));  // dw = 3.
  RdfGraph g(&pool);
  // Encode a triangle-free graph: the clique child has no homomorphism,
  // but the 2-pebble relaxation may hallucinate one.
  UndirectedGraph c5 = UndirectedGraph::Cycle(5);
  EncodeUndirectedGraph(c5, "r", "u", &g);
  g.Insert("s", "p", "s");
  g.Insert("s", "q", "u0");

  Mapping mu = testlib::MakeMapping(&pool, {{"x", "s"}});
  bool naive = NaiveWdEval(forest, g, mu);
  EXPECT_TRUE(naive) << "no K4 in C5, so mu is maximal";
  // Whatever the pebble algorithm answers at k=1, acceptance implies
  // membership; and at k=3 (the true dw) it must agree.
  if (PebbleWdEval(forest, g, mu, 1)) {
    EXPECT_TRUE(naive);
  }
  EXPECT_EQ(PebbleWdEval(forest, g, mu, 3), naive);
}

}  // namespace
}  // namespace wdsparql
