#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "engine/api_internal.h"
#include "engine/dictionary.h"
#include "engine/indexed_store.h"
#include "engine/query_engine.h"
#include "rdf/generator.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "support/testlib.h"
#include "util/rng.h"
#include "wdsparql/wdsparql.h"

/// \file
/// Tests of the public Database/Session/Cursor surface: mutation with
/// incremental index maintenance (differential against rebuild),
/// cursor pause/resume, projection + duplicate elimination, structured
/// diagnostics, and miss-safe dictionary lookups.

namespace wdsparql {
namespace {

Database MakeSmallDatabase() {
  Database db;
  db.AddTriple("alice", "knows", "bob");
  db.AddTriple("bob", "knows", "carol");
  db.AddTriple("bob", "email", "bob-at-example");
  return db;
}

// ---------------------------------------------------------------------
// Database mutation basics
// ---------------------------------------------------------------------

TEST(DatabaseTest, AddRemoveContains) {
  Database db;
  EXPECT_TRUE(db.empty());
  EXPECT_TRUE(db.AddTriple("a", "p", "b"));
  EXPECT_FALSE(db.AddTriple("a", "p", "b"));  // Duplicate.
  EXPECT_EQ(db.size(), 1u);
  EXPECT_TRUE(db.Contains(Triple(db.pool().InternIri("a"), db.pool().InternIri("p"),
                                 db.pool().InternIri("b"))));
  EXPECT_TRUE(db.RemoveTriple("a", "p", "b"));
  EXPECT_FALSE(db.RemoveTriple("a", "p", "b"));  // Gone already.
  EXPECT_TRUE(db.empty());
}

TEST(DatabaseTest, RejectsNonGroundTriples) {
  Database db;
  TermId var = db.pool().InternVariable("x");
  TermId iri = db.pool().InternIri("p");
  EXPECT_FALSE(db.AddTriple(Triple(var, iri, iri)));
  EXPECT_TRUE(db.empty());
}

TEST(DatabaseTest, RemoveProbeOfUnknownSpellingsDoesNotGrowPool) {
  Database db = MakeSmallDatabase();
  std::size_t iris_before = db.pool().NumIris();
  EXPECT_FALSE(db.RemoveTriple("never-seen-s", "never-seen-p", "never-seen-o"));
  EXPECT_EQ(db.pool().NumIris(), iris_before);  // Pure lookup, no intern.
}

TEST(DatabaseTest, SessionsSurviveDatabaseMoves) {
  Database db = MakeSmallDatabase();
  Session session = db.OpenSession();
  Statement stmt = session.Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());
  // Sessions/statements bind to the move-stable internal state.
  Database moved = std::move(db);
  EXPECT_EQ(stmt.Count(), 2u);
  EXPECT_EQ(session.Prepare("(?x email ?e)").Count(), 1u);
}

TEST(DatabaseTest, GenerationAdvancesOnMutationAndCompact) {
  Database db;
  uint64_t g0 = db.generation();
  db.AddTriple("a", "p", "b");
  EXPECT_GT(db.generation(), g0);
  uint64_t g1 = db.generation();
  db.AddTriple("a", "p", "b");  // No-op: duplicate.
  EXPECT_EQ(db.generation(), g1);
  db.Compact();
  EXPECT_GT(db.generation(), g1);
}

TEST(DatabaseTest, LoadNTriplesIsAtomicOnParseError) {
  Database db;
  Status bad = db.LoadNTriples("a p b .\nthis is not a triple line at all ! ? .\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(db.empty());
  EXPECT_TRUE(db.LoadNTriples("a p b .\nb q c .\n").ok());
  EXPECT_EQ(db.size(), 2u);
  // Second load takes the incremental path.
  EXPECT_TRUE(db.LoadNTriples("c r d .\n").ok());
  EXPECT_EQ(db.size(), 3u);
}

// ---------------------------------------------------------------------
// Dictionary miss-safety (satellite: TryResolve)
// ---------------------------------------------------------------------

TEST(DictionaryTest, TryResolveIsMissSafe) {
  TermPool pool;
  RdfGraph graph(&pool);
  graph.Insert("a", "p", "b");
  Dictionary dict = Dictionary::Build(graph.triples());
  EXPECT_TRUE(dict.TryResolve(pool.InternIri("a")).has_value());
  EXPECT_FALSE(dict.TryResolve(pool.InternIri("never-stored")).has_value());
}

TEST(DictionaryTest, GetOrAddAppendsStableIds) {
  TermPool pool;
  RdfGraph graph(&pool);
  graph.Insert("a", "p", "b");
  Dictionary dict = Dictionary::Build(graph.triples());
  std::size_t built = dict.size();
  DataId a_before = dict.Encode(pool.InternIri("a"));
  TermId fresh = pool.InternIri("zz-fresh");
  DataId id = dict.GetOrAdd(fresh);
  EXPECT_EQ(id, built);                       // Appended, not re-sorted.
  EXPECT_EQ(dict.Encode(pool.InternIri("a")), a_before);  // Old ids stable.
  EXPECT_EQ(dict.GetOrAdd(fresh), id);        // Idempotent.
  EXPECT_EQ(dict.Decode(id), fresh);
  EXPECT_EQ(*dict.TryResolve(fresh), id);
}

TEST(SessionTest, UnknownTermQueriesReturnEmptyCursors) {
  Database db = MakeSmallDatabase();
  Session session = db.OpenSession();
  // "nobody" and "likes" never occur in the database: the cursor must
  // come back empty (miss-safe), not assert.
  for (const char* text : {"(nobody knows ?x)", "(?x likes ?y)",
                           "(alice knows ?x) AND (?x likes nobody)"}) {
    Statement stmt = session.Prepare(text);
    ASSERT_TRUE(stmt.ok()) << text;
    Cursor cursor = stmt.Execute();
    EXPECT_FALSE(cursor.Next()) << text;
    EXPECT_EQ(cursor.state(), Cursor::State::kExhausted) << text;
  }
}

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

TEST(SessionTest, ParseErrorDiagnostics) {
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare("((?x knows");
  EXPECT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.diagnostics().code, QueryDiagnostics::Code::kParseError);
  EXPECT_FALSE(stmt.diagnostics().parsed);
  EXPECT_EQ(stmt.diagnostics().pattern_text, "((?x knows");
}

TEST(SessionTest, NotWellDesignedDiagnosticsNameTheVariable) {
  Database db = MakeSmallDatabase();
  Statement stmt =
      db.OpenSession().Prepare("((?x knows ?x) OPT (?x knows ?y)) AND (?y knows ?y)");
  EXPECT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.diagnostics().code, QueryDiagnostics::Code::kNotWellDesigned);
  EXPECT_TRUE(stmt.diagnostics().parsed);
  EXPECT_FALSE(stmt.diagnostics().well_designed);
  EXPECT_EQ(stmt.diagnostics().offending_variable, "?y");
  // Failed statements execute to failed cursors, not crashes.
  Cursor cursor = stmt.Execute();
  EXPECT_FALSE(cursor.Next());
  EXPECT_EQ(cursor.state(), Cursor::State::kFailed);
  EXPECT_FALSE(stmt.Contains(Mapping()));
}

TEST(SessionTest, NestedFilterIsUnsupported) {
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare(
      "((?x knows ?y) FILTER (?x != ?y)) OPT (?y email ?e)");
  EXPECT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.diagnostics().code, QueryDiagnostics::Code::kUnsupported);
}

TEST(SessionTest, PlanFactsOnSuccess) {
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y) OPT (?y email ?e)");
  ASSERT_TRUE(stmt.ok());
  const QueryDiagnostics& diag = stmt.diagnostics();
  EXPECT_TRUE(diag.parsed);
  EXPECT_TRUE(diag.well_designed);
  EXPECT_TRUE(diag.union_free);
  EXPECT_EQ(diag.num_trees, 1u);
  EXPECT_EQ(diag.num_triple_patterns, 2u);
  EXPECT_EQ(diag.variables, (std::vector<std::string>{"?x", "?y", "?e"}));
  EXPECT_EQ(stmt.variables(), diag.variables);
}

// ---------------------------------------------------------------------
// Cursor pull semantics
// ---------------------------------------------------------------------

TEST(CursorTest, PauseAndResumeMidEnumeration) {
  Rng rng(7);
  TermPool pool;
  Database db(&pool);
  {
    RdfGraph staged(&pool);
    testlib::SmallWorkloadGraph(&rng, 6, 40, 3, &staged);
    for (const Triple& t : staged.triples()) db.AddTriple(t);
  }
  PatternPtr pattern = testlib::RandomWellDesignedUnion(&rng, &pool, 2);
  Statement stmt = db.OpenSession().PrepareParsed(pattern);
  ASSERT_TRUE(stmt.ok());

  std::vector<Mapping> all = stmt.Solutions();

  // Pull a prefix, do unrelated work, then resume: the suspended cursor
  // must deliver exactly the remaining answers.
  Cursor cursor = stmt.Execute();
  ASSERT_TRUE(cursor.Open());
  std::vector<Mapping> streamed;
  std::size_t k = all.size() / 2;
  for (std::size_t i = 0; i < k; ++i) {
    ASSERT_TRUE(cursor.Next());
    streamed.push_back(cursor.Row());
  }
  EXPECT_EQ(cursor.state(), Cursor::State::kOpen);
  EXPECT_EQ(cursor.rows(), k);
  // (Suspension point: other cursors can run against the same database.)
  EXPECT_EQ(stmt.Count(), all.size());
  while (cursor.Next()) streamed.push_back(cursor.Row());
  EXPECT_EQ(cursor.state(), Cursor::State::kExhausted);

  std::sort(streamed.begin(), streamed.end());
  EXPECT_EQ(streamed, all);
}

TEST(CursorTest, CloseStopsEnumerationEarly) {
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());
  Cursor cursor = stmt.Execute();
  ASSERT_TRUE(cursor.Next());
  cursor.Close();
  EXPECT_EQ(cursor.state(), Cursor::State::kClosed);
  EXPECT_FALSE(cursor.Next());
}

TEST(CursorTest, IndexedCursorKeepsItsPinnedViewAcrossMutations) {
  // The MVCC contract: an open indexed-backend cursor pinned a read
  // view at Open and keeps enumerating that exact snapshot, whatever
  // the writer does meanwhile.
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());
  Cursor cursor = stmt.Execute();
  ASSERT_TRUE(cursor.Next());
  uint64_t pinned = cursor.generation();
  db.AddTriple("dave", "knows", "alice");
  EXPECT_GT(db.generation(), pinned);
  // The cursor still completes over the pre-mutation snapshot: two
  // answers total, never the freshly inserted row.
  uint64_t rows = 1;
  while (cursor.Next()) ++rows;
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(cursor.state(), Cursor::State::kExhausted);
  EXPECT_TRUE(cursor.diagnostics().ok());
  // A fresh execution pins the freshest view and sees the new data.
  EXPECT_EQ(stmt.Count(), 3u);
}

TEST(CursorTest, NaiveCursorStillInvalidatesOnMutation) {
  // The naive hash backend reads the live row store in place, so it
  // keeps the historical fail-fast contract.
  Database db = MakeSmallDatabase();
  SessionOptions naive;
  naive.backend = Backend::kNaiveHash;
  Statement stmt = db.OpenSession(naive).Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());
  Cursor cursor = stmt.Execute();
  ASSERT_TRUE(cursor.Next());
  db.AddTriple("dave", "knows", "alice");
  EXPECT_FALSE(cursor.Next());
  EXPECT_EQ(cursor.state(), Cursor::State::kInvalidated);
  // Invalidation is a structured, non-OK outcome.
  EXPECT_EQ(cursor.diagnostics().code, QueryDiagnostics::Code::kInvalidated);
  EXPECT_FALSE(cursor.diagnostics().ok());
  // A fresh execution sees the new data.
  EXPECT_EQ(stmt.Count(), 3u);
}

TEST(CursorTest, PinnedCursorSurvivesCompactAndMergeChurn) {
  // Compact reallocates every base run; a pinned cursor must keep the
  // superseded runs alive and finish exactly its snapshot.
  DatabaseOptions options;
  options.merge_threshold = 4;  // Force merges mid-enumeration.
  Database db(options);
  for (int i = 0; i < 32; ++i) {
    db.AddTriple("n" + std::to_string(i), "p", "n" + std::to_string(i + 1));
  }
  Statement stmt = db.OpenSession().Prepare("(?x p ?y)");
  ASSERT_TRUE(stmt.ok());
  Cursor cursor = stmt.Execute();
  ASSERT_TRUE(cursor.Next());
  // Churn: inserts crossing the merge threshold repeatedly, removals of
  // rows the cursor has not delivered yet, and an explicit Compact.
  for (int i = 0; i < 16; ++i) {
    db.AddTriple("m" + std::to_string(i), "p", "m" + std::to_string(i + 1));
  }
  for (int i = 10; i < 20; ++i) {
    db.RemoveTriple("n" + std::to_string(i), "p", "n" + std::to_string(i + 1));
  }
  db.Compact();
  uint64_t rows = 1;
  while (cursor.Next()) ++rows;
  EXPECT_EQ(rows, 32u);  // The pinned snapshot, unperturbed.
  EXPECT_EQ(cursor.state(), Cursor::State::kExhausted);
}

// ---------------------------------------------------------------------
// Projection + duplicate elimination
// ---------------------------------------------------------------------

TEST(ProjectionTest, ProjectedCursorMatchesRestrictedSolutions) {
  Rng rng(21);
  TermPool pool;
  Database db(&pool);
  {
    RdfGraph staged(&pool);
    testlib::SmallWorkloadGraph(&rng, 6, 48, 3, &staged);
    for (const Triple& t : staged.triples()) db.AddTriple(t);
  }
  PatternPtr pattern = testlib::RandomWellDesignedUnion(&rng, &pool, 2);
  Statement stmt = db.OpenSession().PrepareParsed(pattern);
  ASSERT_TRUE(stmt.ok());
  if (stmt.variables().size() < 2) GTEST_SKIP() << "needs >= 2 variables";

  // Project onto the first variable only.
  std::string var = stmt.variables()[0];
  std::vector<TermId> var_id = {pool.InternVariable(var.substr(1))};

  std::set<Mapping> expected;
  for (const Mapping& mu : stmt.Solutions()) expected.insert(mu.RestrictedTo(var_id));

  Cursor cursor = stmt.Execute({var});
  std::set<Mapping> projected;
  uint64_t delivered = 0;
  while (cursor.Next()) {
    EXPECT_TRUE(projected.insert(cursor.Row()).second)
        << "duplicate projected row " << cursor.Row().ToString(pool);
    ++delivered;
  }
  EXPECT_EQ(projected, expected);
  EXPECT_EQ(delivered, expected.size());

  // Same through the columnar table.
  BindingTable table = stmt.ExecuteTable({var});
  EXPECT_EQ(table.NumColumns(), 1u);
  EXPECT_EQ(table.NumRows(), expected.size());
  EXPECT_EQ(table.ColumnName(0), var);
}

TEST(ProjectionTest, RepeatedColumnsStillDeduplicateDroppedVariables) {
  Database db;
  db.AddTriple("a", "p", "b1");
  db.AddTriple("a", "p", "b2");
  Statement stmt = db.OpenSession().Prepare("(?x p ?y)");
  ASSERT_TRUE(stmt.ok());
  // SELECT ?x, ?x drops ?y: the two answers collapse to one projected
  // row even though the column count matches the variable count.
  Cursor cursor = stmt.Execute({"?x", "?x"});
  ASSERT_TRUE(cursor.Next());
  EXPECT_EQ(cursor.width(), 2u);
  EXPECT_EQ(cursor.Value(0), "a");
  EXPECT_EQ(cursor.Value(1), "a");
  EXPECT_FALSE(cursor.Next());
  EXPECT_EQ(cursor.rows(), 1u);
}

TEST(ProjectionTest, UnknownVariableFailsStructurally) {
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());
  Cursor cursor = stmt.Execute({"?nope"});
  EXPECT_EQ(cursor.state(), Cursor::State::kFailed);
  EXPECT_EQ(cursor.diagnostics().code, QueryDiagnostics::Code::kInvalidProjection);
  EXPECT_FALSE(cursor.Next());
}

TEST(ProjectionTest, BindingTableRepresentsUnboundCells) {
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y) OPT (?y email ?e)");
  ASSERT_TRUE(stmt.ok());
  BindingTable table = stmt.ExecuteTable();
  ASSERT_EQ(table.NumRows(), 2u);
  ASSERT_EQ(table.NumColumns(), 3u);
  auto e_col = table.ColumnIndex("e");
  ASSERT_TRUE(e_col.has_value());
  int bound = 0, unbound = 0;
  for (std::size_t row = 0; row < table.NumRows(); ++row) {
    if (table.IsBound(row, *e_col)) {
      ++bound;
      EXPECT_EQ(table.Value(row, *e_col), "bob-at-example");
    } else {
      ++unbound;
      EXPECT_EQ(table.Value(row, *e_col), "");
    }
  }
  EXPECT_EQ(bound, 1);    // alice->bob has the email.
  EXPECT_EQ(unbound, 1);  // bob->carol does not.
}

// ---------------------------------------------------------------------
// FILTER through the engine path (satellite: backend honoured)
// ---------------------------------------------------------------------

TEST(FilterTest, TopLevelFilterRunsOnBothBackends) {
  TermPool pool;
  Database db(&pool);
  db.AddTriple("a", "p", "a");
  db.AddTriple("a", "p", "b");
  db.AddTriple("b", "p", "c");

  auto parsed = ParsePattern("((?x p ?y)) FILTER (?x != ?y)", &pool);
  ASSERT_TRUE(parsed.ok());
  std::vector<Mapping> reference = Evaluate(*parsed.value(), db.graph());

  for (Backend backend : {Backend::kNaiveHash, Backend::kIndexed}) {
    SessionOptions options;
    options.backend = backend;
    Statement stmt = db.OpenSession(options).Prepare("((?x p ?y)) FILTER (?x != ?y)");
    ASSERT_TRUE(stmt.ok()) << BackendToString(backend) << ": "
                           << stmt.diagnostics().ToString();
    EXPECT_EQ(stmt.diagnostics().post_filters, 1u);
    EXPECT_EQ(stmt.Solutions(), reference) << BackendToString(backend);
    // Membership honours the filter too.
    for (const Mapping& mu : reference) {
      EXPECT_TRUE(stmt.Contains(mu));
    }
    Mapping loop = testlib::MakeMapping(&pool, {{"x", "a"}, {"y", "a"}});
    EXPECT_FALSE(stmt.Contains(loop)) << "filtered-out mapping accepted";
  }
}

// ---------------------------------------------------------------------
// Incremental maintenance: differential against rebuild-from-scratch
// ---------------------------------------------------------------------

class IncrementalDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalDifferentialTest, ScansMatchRebuiltStoreUnderRandomUpdates) {
  Rng rng(GetParam());
  TermPool pool;
  // Small merge threshold so the test crosses several merge boundaries
  // (the default 4096 would never trigger a merge at this scale).
  DatabaseOptions options;
  options.merge_threshold = 8;
  Database small(&pool, options);

  RdfGraph mirror(&pool);  // Ground truth, maintained in lockstep.
  std::vector<TermId> nodes;
  for (int i = 0; i < 10; ++i) {
    nodes.push_back(pool.InternIri("n" + std::to_string(i)));
  }
  std::vector<TermId> predicates;
  for (int i = 0; i < 3; ++i) {
    predicates.push_back(pool.InternIri("p" + std::to_string(i)));
  }
  auto random_triple = [&]() {
    return Triple(nodes[rng.NextBounded(10)], predicates[rng.NextBounded(3)],
                  nodes[rng.NextBounded(10)]);
  };

  for (int step = 0; step < 400; ++step) {
    Triple t = random_triple();
    if (rng.NextBounded(3) == 0) {
      EXPECT_EQ(small.RemoveTriple(t), mirror.Remove(t));
    } else {
      EXPECT_EQ(small.AddTriple(t), mirror.Insert(t));
    }
    ASSERT_EQ(small.size(), mirror.size());

    if (step % 25 != 0) continue;
    // Differential check: the incrementally maintained store behaves
    // exactly like one rebuilt from scratch over the mirror.
    IndexedStore rebuilt = IndexedStore::Build(mirror.triples());
    ASSERT_EQ(small.store().size(), rebuilt.size());
    for (int trial = 0; trial < 12; ++trial) {
      Triple probe = random_triple();
      int mask = static_cast<int>(rng.NextBounded(8));
      for (int pos = 0; pos < 3; ++pos) {
        if (((mask >> pos) & 1) == 0) probe.Set(pos, kAnyTerm);
      }
      std::vector<Triple> incremental, fresh;
      small.store().ScanPattern(probe, [&](const Triple& match) {
        incremental.push_back(match);
        return true;
      });
      rebuilt.ScanPattern(probe, [&](const Triple& match) {
        fresh.push_back(match);
        return true;
      });
      std::sort(incremental.begin(), incremental.end());
      std::sort(fresh.begin(), fresh.end());
      ASSERT_EQ(incremental, fresh) << "step " << step << " mask " << mask;
    }
  }
}

TEST_P(IncrementalDifferentialTest, QueriesMatchRebuiltDatabaseUnderRandomUpdates) {
  Rng rng(GetParam() ^ 0xbeef);
  TermPool pool;
  DatabaseOptions options;
  options.merge_threshold = 16;
  Database db(&pool, options);
  {
    RdfGraph staged(&pool);
    testlib::SmallWorkloadGraph(&rng, 5, 24, 3, &staged);
    for (const Triple& t : staged.triples()) db.AddTriple(t);
  }
  PatternPtr pattern = testlib::RandomWellDesignedUnion(&rng, &pool, 2);

  std::vector<TermId> nodes = db.graph().triples().Iris();
  auto random_triple = [&]() {
    auto pick = [&]() {
      return nodes[rng.NextBounded(static_cast<uint32_t>(nodes.size()))];
    };
    return Triple(pick(), pick(), pick());
  };

  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 6; ++i) {
      Triple t = random_triple();
      if (rng.NextBounded(3) == 0) {
        db.RemoveTriple(t);
      } else {
        db.AddTriple(t);
      }
    }
    // Rebuild a fresh database with identical contents, then compare the
    // full solution sets on both backends plus the set semantics.
    Database rebuilt(&pool);
    for (const Triple& t : db.graph().triples()) rebuilt.AddTriple(t);

    Statement incremental = db.OpenSession().PrepareParsed(pattern);
    Statement fresh = rebuilt.OpenSession().PrepareParsed(pattern);
    ASSERT_TRUE(incremental.ok() && fresh.ok());
    std::vector<Mapping> inc_solutions = incremental.Solutions();
    ASSERT_EQ(inc_solutions, fresh.Solutions()) << "round " << round;
    ASSERT_EQ(inc_solutions, Evaluate(*pattern, db.graph())) << "round " << round;

    SessionOptions naive;
    naive.backend = Backend::kNaiveHash;
    ASSERT_EQ(inc_solutions, db.OpenSession(naive).PrepareParsed(pattern).Solutions())
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDifferentialTest,
                         ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Cursor enumeration equals the deprecated facade (acceptance criterion)
// ---------------------------------------------------------------------

class CursorVsFacadeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CursorVsFacadeTest, CursorSolutionsEqualQueryEngineSolutions) {
  Rng rng(GetParam());
  TermPool pool;
  PatternPtr pattern = testlib::RandomWellDesignedUnion(&rng, &pool, 2);
  RdfGraph graph(&pool);
  testlib::SmallWorkloadGraph(&rng, 5, 16, 3, &graph);

  Database db(&pool);
  for (const Triple& t : graph.triples()) db.AddTriple(t);

  for (Backend backend : {Backend::kNaiveHash, Backend::kIndexed}) {
    SessionOptions session_options;
    session_options.backend = backend;
    Statement stmt = db.OpenSession(session_options).PrepareParsed(pattern);
    ASSERT_TRUE(stmt.ok());

    QueryEngineOptions engine_options;
    engine_options.backend = backend;
    QueryEngine engine(graph, engine_options);
    Result<PreparedQuery> prepared = engine.PrepareParsed(pattern);
    ASSERT_TRUE(prepared.ok());

    EXPECT_EQ(stmt.Solutions(), engine.Solutions(prepared.value()))
        << BackendToString(backend);

    // Membership agreement on answers and near-misses.
    Rng probe_rng(GetParam() ^ 0xfeed);
    for (const Mapping& probe :
         testlib::MembershipProbes(pattern, graph, &probe_rng, 6)) {
      EXPECT_EQ(stmt.Contains(probe), engine.Evaluate(prepared.value(), probe))
          << probe.ToString(pool);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CursorVsFacadeTest, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace wdsparql
