#include <gtest/gtest.h>

#include "hom/core.h"
#include "ptree/tgraph.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  TermId V(const char* name) { return pool_.InternVariable(name); }
  TermId I(const char* name) { return pool_.InternIri(name); }

  TermPool pool_;
};

TEST_F(CoreTest, SingleTripleIsCore) {
  TripleSet s;
  s.Insert(Triple(V("x"), I("p"), V("y")));
  EXPECT_TRUE(IsCore(s, {}));
  EXPECT_EQ(ComputeCore(s, {}).size(), 1u);
}

TEST_F(CoreTest, DuplicatedEdgeFolds) {
  // Two parallel p-edges from x fold into one.
  TripleSet s;
  s.Insert(Triple(V("x"), I("p"), V("y")));
  s.Insert(Triple(V("x"), I("p"), V("z")));
  TripleSet core = ComputeCore(s, {});
  EXPECT_EQ(core.size(), 1u);
  EXPECT_FALSE(IsCore(s, {}));
}

TEST_F(CoreTest, DistinguishedVariablesBlockFolding) {
  // Same shape, but both endpoints distinguished: nothing can fold.
  TripleSet s;
  s.Insert(Triple(V("x"), I("p"), V("y")));
  s.Insert(Triple(V("x"), I("p"), V("z")));
  EXPECT_TRUE(IsCore(s, {V("y"), V("z")}));
  EXPECT_EQ(ComputeCore(s, {V("y"), V("z")}).size(), 2u);
}

TEST_F(CoreTest, CliqueIsCore) {
  for (int k = 2; k <= 4; ++k) {
    TripleSet clique = MakeClique(&pool_, k, "c", "r");
    EXPECT_TRUE(IsCore(clique, {})) << "K_" << k;
  }
}

TEST_F(CoreTest, CliqueFoldsIntoSelfLoop) {
  // K_k plus a self-loop (?o, r, ?o): everything folds onto ?o.
  TripleSet s = MakeClique(&pool_, 4, "m", "r");
  TermId o = V("loop");
  s.Insert(Triple(o, I("r"), o));
  // Connect the clique to the loop so folding is possible in one step:
  // actually K_k maps onto the loop vertex directly.
  TripleSet core = ComputeCore(s, {});
  EXPECT_EQ(core.size(), 1u);
  EXPECT_TRUE(core.Contains(Triple(o, I("r"), o)));
}

TEST_F(CoreTest, PaperExample3SIsCore) {
  for (int k = 2; k <= 4; ++k) {
    GeneralizedTGraph s = MakeExample3S(&pool_, k);
    EXPECT_TRUE(IsCore(s.S, s.X)) << "k = " << k;
  }
}

TEST_F(CoreTest, PaperExample3SPrimeCore) {
  // Example 3: the core of (S', X) is
  // C' = {(?z,q,?x), (?x,p,?y), (?y,r,?o), (?o,r,?o)}.
  GeneralizedTGraph s_prime = MakeExample3SPrime(&pool_, 3);
  TripleSet core = ComputeCore(s_prime.S, s_prime.X);
  TripleSet expected;
  expected.Insert(Triple(V("z"), I("q"), V("x")));
  expected.Insert(Triple(V("x"), I("p"), V("y")));
  expected.Insert(Triple(V("y"), I("r"), V("o")));
  expected.Insert(Triple(V("o"), I("r"), V("o")));
  EXPECT_TRUE(core == expected)
      << "core size " << core.size() << " expected " << expected.size();
}

TEST_F(CoreTest, CoreIsIdempotent) {
  GeneralizedTGraph s_prime = MakeExample3SPrime(&pool_, 3);
  TripleSet once = ComputeCore(s_prime.S, s_prime.X);
  TripleSet twice = ComputeCore(once, s_prime.X);
  EXPECT_TRUE(once == twice);
  EXPECT_TRUE(IsCore(once, s_prime.X));
}

TEST_F(CoreTest, CoreIsHomEquivalentToOriginal) {
  GeneralizedTGraph s_prime = MakeExample3SPrime(&pool_, 4);
  TripleSet core = ComputeCore(s_prime.S, s_prime.X);
  EXPECT_TRUE(HomEquivalent(s_prime.S, core, s_prime.X));
}

TEST_F(CoreTest, TriplesOverConstantsSurvive) {
  TripleSet s;
  s.Insert(Triple(I("a"), I("p"), I("b")));
  s.Insert(Triple(V("x"), I("p"), V("y")));
  s.Insert(Triple(V("x"), I("p"), V("z")));
  TripleSet core = ComputeCore(s, {});
  EXPECT_TRUE(core.Contains(Triple(I("a"), I("p"), I("b"))));
}

TEST_F(CoreTest, EvenCycleFoldsToEdgePair) {
  // An undirected (symmetric) 4-cycle folds onto a single symmetric edge.
  TripleSet s;
  const char* names[4] = {"c0", "c1", "c2", "c3"};
  for (int i = 0; i < 4; ++i) {
    s.Insert(Triple(V(names[i]), I("e"), V(names[(i + 1) % 4])));
    s.Insert(Triple(V(names[(i + 1) % 4]), I("e"), V(names[i])));
  }
  TripleSet core = ComputeCore(s, {});
  EXPECT_EQ(core.size(), 2u);  // (u e v) and (v e u).
}

TEST_F(CoreTest, DirectedOddCycleIsCore) {
  TripleSet s;
  const char* names[3] = {"d0", "d1", "d2"};
  for (int i = 0; i < 3; ++i) {
    s.Insert(Triple(V(names[i]), I("e"), V(names[(i + 1) % 3])));
  }
  EXPECT_TRUE(IsCore(s, {}));
}

}  // namespace
}  // namespace wdsparql
