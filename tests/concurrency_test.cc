#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <utility>
#include <thread>
#include <vector>

#include "engine/api_internal.h"
#include "support/testlib.h"
#include "util/rng.h"
#include "wdsparql/wdsparql.h"

/// \file
/// Tests of the single-writer / many-readers contract (docs/CONCURRENCY.md):
/// reader threads running prepared statements and cursors over pinned
/// `ReadView`s while one writer mutates, merges and compacts. The suite
/// is meant to run under ThreadSanitizer (the CI `tsan` job does) as
/// well as plain: assertions are differential — concurrent results must
/// equal some single-threaded snapshot's results — rather than timing
/// based.

namespace wdsparql {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wdsparql_concurrency_" + name;
}

std::string FreshPath(const std::string& name) {
  std::string path = TempPath(name);
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

/// Sorted rendered solutions of `stmt` via a cursor — one consistent
/// snapshot's answers, comparable across executions.
std::vector<std::string> SortedRows(const Database& db, const Statement& stmt) {
  std::vector<std::string> out;
  Cursor cursor = stmt.Execute();
  while (cursor.Next()) out.push_back(cursor.Row().ToString(db.pool()));
  EXPECT_EQ(cursor.state(), Cursor::State::kExhausted);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------
// Pinned views vs a live writer
// ---------------------------------------------------------------------

TEST(PinnedViewTest, OpenCursorSurvivesHeavyMutationAndDeliversItsSnapshot) {
  DatabaseOptions options;
  options.merge_threshold = 8;  // Merge churn while the cursor is live.
  Database db(options);
  for (int i = 0; i < 64; ++i) {
    db.AddTriple("a" + std::to_string(i), "knows", "b" + std::to_string(i));
  }
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());

  std::vector<std::string> expected = SortedRows(db, stmt);
  ASSERT_EQ(expected.size(), 64u);

  Cursor cursor = stmt.Execute();
  ASSERT_TRUE(cursor.Next());
  std::vector<std::string> got = {cursor.Row().ToString(db.pool())};

  // Mutate everything underneath the open cursor: new rows, removal of
  // rows it has not reached, merges, a compaction, even a removal of a
  // row it already delivered.
  for (int i = 0; i < 64; ++i) {
    db.AddTriple("c" + std::to_string(i), "knows", "d" + std::to_string(i));
  }
  for (int i = 0; i < 64; i += 2) {
    db.RemoveTriple("a" + std::to_string(i), "knows", "b" + std::to_string(i));
  }
  db.Compact();

  while (cursor.Next()) got.push_back(cursor.Row().ToString(db.pool()));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);  // Exactly the pinned snapshot.
  EXPECT_EQ(cursor.state(), Cursor::State::kExhausted);

  // A fresh cursor sees the post-mutation world.
  EXPECT_EQ(stmt.Count(), 64u + 32u);
}

TEST(PinnedViewTest, ConcurrentReadersObserveMonotonicConsistentSnapshots) {
  // One writer inserts rows in a fixed order; reader threads repeatedly
  // execute the statement. Each execution pins one view, so its count
  // must be (a) a value the writer actually published and (b) monotonic
  // non-decreasing per reader — a torn delta or a lost publish would
  // break one of the two.
  constexpr int kReaders = 4;
  constexpr int kRows = 600;
  DatabaseOptions options;
  options.merge_threshold = 64;  // Plenty of merges mid-flight.
  Database db(options);
  db.AddTriple("seed", "p", "seed2");  // Non-empty: statements see the predicate.

  std::atomic<bool> done{false};
  std::atomic<uint64_t> write_failures{0};
  std::thread writer([&] {
    for (int i = 0; i < kRows; ++i) {
      if (!db.AddTriple("s" + std::to_string(i), "p", "o" + std::to_string(i))) {
        write_failures.fetch_add(1);
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> reader_failures{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Session session = db.OpenSession();
      Statement stmt = session.Prepare("(?x p ?y)");
      if (!stmt.ok()) {
        reader_failures.fetch_add(1);
        return;
      }
      uint64_t last = 0;
      // Keep reading until the writer finished, then one final pass.
      bool final_pass = false;
      while (true) {
        if (done.load()) final_pass = true;
        uint64_t count = 0;
        Cursor cursor = stmt.Execute();
        while (cursor.Next()) ++count;
        if (cursor.state() != Cursor::State::kExhausted) {
          reader_failures.fetch_add(1);
          return;
        }
        if (count < last) {  // Snapshots must never go backwards.
          reader_failures.fetch_add(1);
          return;
        }
        last = count;
        (void)r;
        if (final_pass) break;
      }
      if (last != kRows + 1) reader_failures.fetch_add(1);
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(write_failures.load(), 0u);
  EXPECT_EQ(reader_failures.load(), 0u);
  EXPECT_EQ(db.size(), static_cast<std::size_t>(kRows) + 1);
}

TEST(PinnedViewTest, ReadersMidCursorWhileWriterRemovesAndCompacts) {
  // Readers hold cursors *open* (pull a few rows, yield, pull more)
  // while the writer removes rows and compacts: every cursor must still
  // deliver exactly the snapshot it pinned.
  DatabaseOptions options;
  options.merge_threshold = 32;
  Database db(options);
  constexpr int kRows = 400;
  for (int i = 0; i < kRows; ++i) {
    db.AddTriple("s" + std::to_string(i), "p", "o" + std::to_string(i));
  }

  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      Session session = db.OpenSession();
      Statement stmt = session.Prepare("(?x p ?y)");
      for (int round = 0; round < 8; ++round) {
        Cursor cursor = stmt.Execute();
        uint64_t count = 0;
        while (cursor.Next()) {
          ++count;
          if (count % 64 == 0) std::this_thread::yield();
        }
        uint64_t pinned_size = count;
        // Any published size is legal; what is illegal is a torn count
        // larger than everything ever inserted or an enumerator crash.
        if (cursor.state() != Cursor::State::kExhausted ||
            pinned_size > kRows) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < kRows; i += 2) {
      db.RemoveTriple("s" + std::to_string(i), "p", "o" + std::to_string(i));
      if (i % 64 == 0) db.Compact();
    }
    db.Compact();
  });
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(db.size(), static_cast<std::size_t>(kRows) / 2);
}

// ---------------------------------------------------------------------
// Differential: concurrent execution equals single-threaded execution
// ---------------------------------------------------------------------

TEST(ConcurrentDifferentialTest, ManyThreadsMatchSingleThreadedAnswers) {
  // A static database: every concurrent execution (indexed backend,
  // many threads at once, including OPT patterns and projections) must
  // produce byte-identical answers to the single-threaded run.
  Rng rng(77);
  TermPool pool;
  Database db(&pool);
  {
    RdfGraph staged(&pool);
    testlib::SmallWorkloadGraph(&rng, 24, 400, 3, &staged);
    for (const Triple& t : staged.triples()) db.AddTriple(t);
  }
  const std::vector<std::string> patterns = {
      "(?x p0 ?y)",
      "(?x p0 ?y) AND (?y p1 ?z)",
      "(?x p0 ?y) OPT (?y p1 ?z)",
      "((?x p0 ?y) OPT (?y p1 ?z)) OPT (?x p2 ?w)",
  };
  Session session = db.OpenSession();
  std::vector<std::vector<std::string>> expected;
  for (const std::string& p : patterns) {
    Statement stmt = session.Prepare(p);
    ASSERT_TRUE(stmt.ok()) << stmt.diagnostics().ToString();
    expected.push_back(SortedRows(db, stmt));
  }

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      // Every thread prepares its own statements (exercising concurrent
      // interning in the shared pool) and runs each pattern twice.
      Session s = db.OpenSession();
      for (int round = 0; round < 2; ++round) {
        for (std::size_t i = 0; i < patterns.size(); ++i) {
          Statement stmt = s.Prepare(patterns[(i + t) % patterns.size()]);
          if (!stmt.ok()) {
            mismatches.fetch_add(1);
            continue;
          }
          std::vector<std::string> got = SortedRows(db, stmt);
          if (got != expected[(i + t) % patterns.size()]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(ConcurrentDifferentialTest, ReadersUnderWriterMatchSomePublishedSnapshot) {
  // With a writer interleaved, each execution's answer set must equal
  // the single-threaded answers at *some* prefix of the write sequence:
  // the writer only ever appends rows of a recognisable shape, so a
  // consistent snapshot is exactly "the first k rows" for some k.
  Database db;
  db.AddTriple("s0", "p", "o0");
  std::atomic<bool> done{false};
  constexpr int kRows = 300;
  std::thread writer([&] {
    for (int i = 1; i < kRows; ++i) {
      db.AddTriple("s" + std::to_string(i), "p", "o" + std::to_string(i));
    }
    done.store(true);
  });
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      Session session = db.OpenSession();
      Statement stmt = session.Prepare("(?x p ?y)");
      if (!stmt.ok()) {
        failures.fetch_add(1);
        return;
      }
      while (!done.load()) {
        Cursor cursor = stmt.Execute();
        std::vector<std::string> rows;
        while (cursor.Next()) rows.push_back(cursor.Value(0));
        // A consistent prefix snapshot contains s0..s(k-1) exactly.
        std::sort(rows.begin(), rows.end());
        std::vector<std::string> prefix;
        for (std::size_t i = 0; i < rows.size(); ++i) {
          prefix.push_back("s" + std::to_string(i));
        }
        std::sort(prefix.begin(), prefix.end());
        if (rows != prefix) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

// ---------------------------------------------------------------------
// Shared pool: concurrent Prepare + Value while the writer interns
// ---------------------------------------------------------------------

TEST(TermPoolConcurrencyTest, SpellingReadsRaceInterningSafely) {
  // The writer interns thousands of fresh spellings (forcing the
  // spelling table to grow chunk directories) while readers prepare
  // statements (interning query variables) and render row values.
  Database db;
  for (int i = 0; i < 100; ++i) {
    db.AddTriple("base" + std::to_string(i), "p", "base" + std::to_string(i + 1));
  }
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 4000; ++i) {
      db.AddTriple("fresh-subject-" + std::to_string(i), "p",
                   "fresh-object-with-a-longer-spelling-" + std::to_string(i));
    }
    done.store(true);
  });
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      int round = 0;
      while (!done.load() || round == 0) {
        ++round;
        Session session = db.OpenSession();
        // Fresh variable names per round: concurrent interning.
        std::string var = "v" + std::to_string(r) + "_" + std::to_string(round);
        Statement stmt = session.Prepare("(?" + var + " p ?w" + var + ")");
        if (!stmt.ok()) {
          failures.fetch_add(1);
          return;
        }
        Cursor cursor = stmt.Execute();
        uint64_t rows = 0;
        while (cursor.Next() && rows < 50) {
          // Value() resolves spellings lock-free against the growing pool.
          if (cursor.Value(0).empty() || cursor.Value(1).empty()) {
            failures.fetch_add(1);
            return;
          }
          ++rows;
        }
        cursor.Close();
        if (cursor.state() != Cursor::State::kClosed &&
            cursor.state() != Cursor::State::kExhausted) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

// ---------------------------------------------------------------------
// Membership + health polling under mutation
// ---------------------------------------------------------------------

TEST(ConcurrencyMiscTest, ContainsAndStatusPollsRaceTheWriter) {
  Database db;
  for (int i = 0; i < 200; ++i) {
    db.AddTriple("s" + std::to_string(i), "p", "o" + std::to_string(i));
  }
  TermId p = db.pool().InternIri("p");
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 200; i < 1200; ++i) {
      db.AddTriple("s" + std::to_string(i), "p", "o" + std::to_string(i));
    }
    done.store(true);
  });
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> pollers;
  for (int r = 0; r < 3; ++r) {
    pollers.emplace_back([&] {
      TermId s0 = db.pool().InternIri("s0");
      TermId o0 = db.pool().InternIri("o0");
      while (!done.load()) {
        if (!db.Contains(Triple(s0, p, o0))) failures.fetch_add(1);
        if (!db.storage_status().ok()) failures.fetch_add(1);
        if (db.size() < 200) failures.fetch_add(1);
        (void)db.pending_delta();
        (void)db.generation();
      }
    });
  }
  writer.join();
  for (std::thread& t : pollers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(db.size(), 1200u);
}

// ---------------------------------------------------------------------
// Snapshot open: racing lazy hydration, pinned mapping release
// ---------------------------------------------------------------------

TEST(SnapshotConcurrencyTest, RacingNaiveReadersHydrateExactlyOnce) {
  std::string path = FreshPath("hydrate.snap");
  {
    Database db;
    for (int i = 0; i < 300; ++i) {
      db.AddTriple("n" + std::to_string(i), "p0", "n" + std::to_string(i + 1));
    }
    ASSERT_TRUE(db.Save(path).ok());
  }
  Result<Database> reopened = Database::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  Database db = std::move(reopened).value();

  // No writer here: the naive backend is only reader-safe without one.
  // All threads race EnsureGraph through naive-backend execution.
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 6; ++r) {
    readers.emplace_back([&] {
      SessionOptions naive;
      naive.backend = Backend::kNaiveHash;
      Statement stmt = db.OpenSession(naive).Prepare("(?x p0 ?y)");
      if (!stmt.ok()) {
        failures.fetch_add(1);
        return;
      }
      if (stmt.Count() != 300u) failures.fetch_add(1);
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(SnapshotConcurrencyTest, PinnedViewKeepsMappedSnapshotAliveAcrossMerge) {
  std::string path = FreshPath("pinned_mapping.snap");
  {
    Database db;
    for (int i = 0; i < 200; ++i) {
      db.AddTriple("m" + std::to_string(i), "p0", "m" + std::to_string(i + 1));
    }
    ASSERT_TRUE(db.Save(path).ok());
  }
  OpenOptions open_options;
  open_options.merge_threshold = 4;
  Result<Database> reopened = Database::Open(path, open_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  Database db = std::move(reopened).value();
  ASSERT_TRUE(db.store().borrows_snapshot());

  // Pin a cursor into the mapped base runs, then force merges that
  // migrate the store to owned storage. The cursor's view must keep the
  // mapping alive and valid until it is released.
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y)");
  ASSERT_TRUE(stmt.ok());
  Cursor cursor = stmt.Execute();
  ASSERT_TRUE(cursor.Next());
  for (int i = 0; i < 16; ++i) {
    db.AddTriple("extra" + std::to_string(i), "p0", "extra" + std::to_string(i + 1));
  }
  EXPECT_FALSE(db.store().borrows_snapshot());  // Store migrated.
  uint64_t rows = 1;
  while (cursor.Next()) ++rows;
  EXPECT_EQ(rows, 200u);  // Full pre-mutation snapshot, read off the mapping.
  EXPECT_EQ(cursor.state(), Cursor::State::kExhausted);
  EXPECT_EQ(stmt.Count(), 216u);
}

}  // namespace
}  // namespace wdsparql
