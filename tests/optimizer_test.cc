#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/api_internal.h"
#include "storage/snapshot.h"
#include "support/testlib.h"
#include "util/rng.h"
#include "wdsparql/wdsparql.h"

/// \file
/// Tests of the cost-based optimizer: the differential property (the
/// chosen variable order must never change the answer set — optimized,
/// heuristic and naive-oracle runs agree on every random case, serially
/// and in parallel), statistics persistence round trips through the
/// snapshot, the legacy (version 1, stats-less) open-and-rebuild path,
/// and plan choice itself on deliberately skewed data.

namespace wdsparql {
namespace {

std::string FreshPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "wdsparql_optimizer_" + name;
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

/// Sorted rendered solutions of one execution.
std::vector<std::string> DrainSorted(Cursor cursor, const TermPool& pool) {
  std::vector<std::string> out;
  while (cursor.Next()) out.push_back(cursor.Row().ToString(pool));
  EXPECT_EQ(cursor.state(), Cursor::State::kExhausted);
  std::sort(out.begin(), out.end());
  return out;
}

/// The first subpattern plan line of a stats-collecting run, or "" when
/// the optimizer chose no plan anywhere in the forest.
std::string FirstPlan(const ExecStats& stats) {
  for (const ExecStats::Subpattern& sub : stats.subpatterns) {
    if (sub.est_rows >= 0) return sub.plan;
  }
  return std::string();
}

// ---------------------------------------------------------------------
// Randomized differential property: >= 200 generated cases, each run
// five ways — optimized/heuristic x serial/parallel, plus the naive
// oracle — over a store whose stats deliberately lag a pending delta.
// ---------------------------------------------------------------------

TEST(OptimizerDifferentialTest, OptimizedMatchesHeuristicAndNaiveAcrossSeeds) {
  constexpr int kCases = 200;
  for (int seed = 0; seed < kCases; ++seed) {
    SCOPED_TRACE("case seed=" + std::to_string(seed));
    Rng rng(static_cast<uint64_t>(seed) * 0x9e3779b9u + 0xe19);
    TermPool pool;
    DatabaseOptions dopts;
    dopts.merge_threshold = 4 + rng.NextBounded(24);
    Database db(&pool, dopts);

    testlib::RandomPatternOptions popts;
    popts.max_depth = 2;
    popts.num_predicates = 3;
    PatternPtr pattern = testlib::RandomWellDesignedPattern(&rng, &pool, popts);
    RdfGraph staged(&pool);
    testlib::SmallWorkloadGraph(&rng, 6, 24 + static_cast<int>(rng.NextBounded(16)),
                                3, &staged);
    std::vector<Triple> triples = staged.triples().triples();

    // Load a prefix, force a merge (builds the statistics), then land
    // the suffix in the delta: the planner costs from base-only counts
    // while execution answers over base + delta — estimates may be off,
    // answers must not be.
    std::size_t prefix = triples.size() / 2 + rng.NextBounded(triples.size() / 4 + 1);
    for (std::size_t i = 0; i < prefix; ++i) db.AddTriple(triples[i]);
    db.Compact();
    for (std::size_t i = prefix; i < triples.size(); ++i) db.AddTriple(triples[i]);

    Statement stmt = db.OpenSession().PrepareParsed(pattern);
    ASSERT_TRUE(stmt.ok()) << stmt.diagnostics().ToString();
    SessionOptions naive_opts;
    naive_opts.backend = Backend::kNaiveHash;
    Statement oracle = db.OpenSession(naive_opts).PrepareParsed(pattern);
    ASSERT_TRUE(oracle.ok()) << oracle.diagnostics().ToString();

    ExecOptions heuristic;
    heuristic.optimize = false;
    const std::vector<std::string> expected =
        DrainSorted(stmt.Execute(heuristic), pool);

    EXPECT_EQ(expected, DrainSorted(oracle.Execute(), pool))
        << "naive oracle diverged from the heuristic indexed run";
    EXPECT_EQ(expected, DrainSorted(stmt.Execute(), pool))
        << "optimized serial run changed the answer set";

    ExecOptions par_opt;
    par_opt.parallelism = 4;
    EXPECT_EQ(expected, DrainSorted(stmt.Execute(par_opt), pool))
        << "optimized parallel run changed the answer set";

    ExecOptions par_heuristic;
    par_heuristic.parallelism = 4;
    par_heuristic.optimize = false;
    EXPECT_EQ(expected, DrainSorted(stmt.Execute(par_heuristic), pool))
        << "heuristic parallel run changed the answer set";
  }
}

// ---------------------------------------------------------------------
// Opt-out contract: optimize=false must not consult the planner at all.
// ---------------------------------------------------------------------

TEST(OptimizerOptOutTest, OptimizeFalseReportsNoPlansAndNoPlanningTime) {
  TermPool pool;
  Database db(&pool);
  for (int i = 0; i < 32; ++i) {
    db.AddTriple("a" + std::to_string(i), "p0", "b" + std::to_string(i % 4));
    db.AddTriple("b" + std::to_string(i % 4), "p1", "c" + std::to_string(i));
  }
  db.Compact();
  Statement stmt = db.OpenSession().Prepare("((?x p0 ?y) AND (?y p1 ?z))");
  ASSERT_TRUE(stmt.ok());

  ExecOptions exec;
  exec.collect_stats = true;
  exec.optimize = false;
  Cursor cursor = stmt.Execute(exec);
  while (cursor.Next()) {
  }
  ASSERT_NE(cursor.stats(), nullptr);
  EXPECT_EQ(cursor.stats()->optimize_ns, 0u);
  EXPECT_EQ(cursor.stats()->est_cost, 0.0);
  for (const ExecStats::Subpattern& sub : cursor.stats()->subpatterns) {
    EXPECT_LT(sub.est_rows, 0) << "plan reported despite optimize=false";
    EXPECT_TRUE(sub.plan.empty());
  }

  // And with the planner on, the same query reports a plan + metrics.
  const uint64_t plans_before = db.metrics().counter("optimizer.plans").value();
  ExecOptions on;
  on.collect_stats = true;
  Cursor planned = stmt.Execute(on);
  while (planned.Next()) {
  }
  ASSERT_NE(planned.stats(), nullptr);
  EXPECT_FALSE(FirstPlan(*planned.stats()).empty());
  EXPECT_GT(planned.stats()->est_cost, 0.0);
  EXPECT_GT(db.metrics().counter("optimizer.plans").value(), plans_before);
  EXPECT_GT(db.metrics().histogram("optimizer.plan_ns").count(), 0u);
}

// ---------------------------------------------------------------------
// Statistics round trip: Save -> Open serves identical answers AND
// identical plans (the persisted counts are the builder's, exactly).
// ---------------------------------------------------------------------

TEST(OptimizerPersistenceTest, StatsRoundTripThroughSnapshot) {
  std::string path = FreshPath("roundtrip.snap");
  TermPool pool;
  Database db(&pool);
  Rng rng(0xe19b);
  RdfGraph staged(&pool);
  testlib::SmallWorkloadGraph(&rng, 10, 120, 3, &staged);
  for (const Triple& t : staged.triples()) db.AddTriple(t);
  ASSERT_TRUE(db.Save(path).ok());

  const char* const kQuery = "((?x p0 ?y) AND (?y p1 ?z)) OPT (?z p2 ?w)";
  Statement stmt = db.OpenSession().Prepare(kQuery);
  ASSERT_TRUE(stmt.ok());
  ExecOptions exec;
  exec.collect_stats = true;
  Cursor original = stmt.Execute(exec);
  std::vector<std::string> expected;
  while (original.Next()) expected.push_back(original.Row().ToString(pool));
  std::sort(expected.begin(), expected.end());
  ASSERT_NE(original.stats(), nullptr);
  const std::string original_plan = FirstPlan(*original.stats());
  ASSERT_FALSE(original_plan.empty()) << "saved database chose no plan";

  Result<Database> reopened = Database::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Statement restmt = reopened->OpenSession().Prepare(kQuery);
  ASSERT_TRUE(restmt.ok());
  Cursor cursor = restmt.Execute(exec);
  std::vector<std::string> got;
  while (cursor.Next()) got.push_back(cursor.Row().ToString(reopened->pool()));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(expected, got);
  ASSERT_NE(cursor.stats(), nullptr);
  // The reopened database plans from the mmapped statistics sections —
  // no Compact has run, so a plan here proves the borrow works — and
  // the persisted counts are the builder's, so the plan is identical.
  EXPECT_EQ(FirstPlan(*cursor.stats()), original_plan);
}

// ---------------------------------------------------------------------
// Legacy snapshots: a version-1 (stats-less) file opens and serves;
// the first Compact rebuilds the statistics and turns the planner on.
// ---------------------------------------------------------------------

TEST(OptimizerPersistenceTest, LegacySnapshotOpensAndRebuildsStatsOnCompact) {
  std::string path = FreshPath("legacy.snap");
  TermPool pool;
  Database db(&pool);
  Rng rng(0xe19c);
  RdfGraph staged(&pool);
  testlib::SmallWorkloadGraph(&rng, 8, 80, 3, &staged);
  for (const Triple& t : staged.triples()) db.AddTriple(t);
  db.Compact();  // WriteSnapshot requires a merged delta.

  // The legacy writer path: a version-1 file without the six
  // statistics sections, byte-compatible with pre-optimizer snapshots.
  const DatabaseImpl& impl = DatabaseImpl::Get(db);
  ASSERT_TRUE(
      storage::WriteSnapshot(path, *impl.pool, impl.store, /*include_stats=*/false)
          .ok());

  const char* const kQuery = "((?x p0 ?y) AND (?y p1 ?z))";
  Statement stmt = db.OpenSession().Prepare(kQuery);
  ASSERT_TRUE(stmt.ok());
  const std::vector<std::string> expected = DrainSorted(stmt.Execute(), pool);

  Result<Database> opened = Database::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Database odb = std::move(opened).value();
  Statement restmt = odb.OpenSession().Prepare(kQuery);
  ASSERT_TRUE(restmt.ok());

  // Before any Compact: no statistics, so queries run on the heuristic
  // order — correct answers, no plan reported.
  ExecOptions exec;
  exec.collect_stats = true;
  Cursor before = restmt.Execute(exec);
  std::vector<std::string> got;
  while (before.Next()) got.push_back(before.Row().ToString(odb.pool()));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(expected, got);
  ASSERT_NE(before.stats(), nullptr);
  EXPECT_TRUE(FirstPlan(*before.stats()).empty())
      << "legacy snapshot reported a plan before any statistics existed";

  // Compact rebuilds the statistics over the borrowed base (counted by
  // the rebuild metric) and the planner engages.
  const uint64_t rebuilds_before =
      odb.metrics().counter("optimizer.stats_rebuilds").value();
  odb.Compact();
  EXPECT_GT(odb.metrics().counter("optimizer.stats_rebuilds").value(),
            rebuilds_before);

  Cursor after = restmt.Execute(exec);
  got.clear();
  while (after.Next()) got.push_back(after.Row().ToString(odb.pool()));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(expected, got);
  ASSERT_NE(after.stats(), nullptr);
  EXPECT_FALSE(FirstPlan(*after.stats()).empty())
      << "no plan after the statistics rebuild";
}

// ---------------------------------------------------------------------
// Plan choice on skewed data: the optimizer must start the descent at
// the selective side regardless of how the pattern is written.
// ---------------------------------------------------------------------

/// 400 (a_i p1 b_i) rows against a single (b7 p2 c): binding ?y via the
/// p2 conjunct first touches one row; binding ?x first scans all 400.
void BuildSkewed(Database* db) {
  for (int i = 0; i < 400; ++i) {
    db->AddTriple("a" + std::to_string(i), "p1", "b" + std::to_string(i));
  }
  db->AddTriple("b7", "p2", "c");
  db->Compact();
}

TEST(OptimizerPlanChoiceTest, SelectiveConjunctDrivesTheOrder) {
  TermPool pool;
  Database db(&pool);
  // 400 matches of (?x p1 o) against one match of (?z p2 q). The two
  // conjuncts tie on the heuristic's pattern count, so the heuristic
  // binds ?x (first occurrence) first and re-scans the p2 range once
  // per p1 row; the statistics break the tie the right way round.
  for (int i = 0; i < 400; ++i) {
    db.AddTriple("a" + std::to_string(i), "p1", "o");
  }
  db.AddTriple("z0", "p2", "q");
  db.Compact();

  Statement stmt = db.OpenSession().Prepare("((?x p1 o) AND (?z p2 q))");
  ASSERT_TRUE(stmt.ok());
  ExecOptions exec;
  exec.collect_stats = true;
  Cursor cursor = stmt.Execute(exec);
  std::vector<std::string> rows;
  while (cursor.Next()) rows.push_back(cursor.Row().ToString(pool));
  ASSERT_EQ(rows.size(), 400u);
  ASSERT_NE(cursor.stats(), nullptr);
  const std::string plan = FirstPlan(*cursor.stats());
  EXPECT_EQ(plan.rfind("order=[?z ?x]", 0), 0u)
      << "expected the selective variable first, got: " << plan;

  // Same query under optimize=false pays the unselective order: the
  // answer set is identical, the scan volume is not.
  ExecOptions heuristic;
  heuristic.collect_stats = true;
  heuristic.optimize = false;
  Cursor hc = stmt.Execute(heuristic);
  std::vector<std::string> hrows;
  while (hc.Next()) hrows.push_back(hc.Row().ToString(pool));
  std::sort(rows.begin(), rows.end());
  std::sort(hrows.begin(), hrows.end());
  EXPECT_EQ(rows, hrows);
  ASSERT_NE(hc.stats(), nullptr);
  EXPECT_LT(cursor.stats()->base_triples_scanned, hc.stats()->base_triples_scanned)
      << "optimized order did not reduce scan work on skewed data";
}

TEST(OptimizerPlanChoiceTest, AlreadySelectiveOrderIsKept) {
  TermPool pool;
  Database db(&pool);
  BuildSkewed(&db);

  // Written selective-side first: the optimizer should agree with the
  // textual order, not churn it.
  Statement stmt = db.OpenSession().Prepare("((?y p2 c) AND (?x p1 ?y))");
  ASSERT_TRUE(stmt.ok());
  ExecOptions exec;
  exec.collect_stats = true;
  Cursor cursor = stmt.Execute(exec);
  uint64_t n = 0;
  while (cursor.Next()) ++n;
  EXPECT_EQ(n, 1u);
  ASSERT_NE(cursor.stats(), nullptr);
  const std::string plan = FirstPlan(*cursor.stats());
  EXPECT_EQ(plan.rfind("order=[?y ?x]", 0), 0u) << plan;
}

TEST(OptimizerPlanChoiceTest, EstimatesAreExactWithoutPendingDelta) {
  TermPool pool;
  Database db(&pool);
  // A clean star: 16 subjects, each with p0 -> one of 4 objects.
  for (int i = 0; i < 16; ++i) {
    db.AddTriple("s" + std::to_string(i), "p0", "o" + std::to_string(i % 4));
  }
  db.Compact();
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y)");
  ASSERT_TRUE(stmt.ok());
  ExecOptions exec;
  exec.collect_stats = true;
  Cursor cursor = stmt.Execute(exec);
  uint64_t n = 0;
  while (cursor.Next()) ++n;
  EXPECT_EQ(n, 16u);
  ASSERT_NE(cursor.stats(), nullptr);
  ASSERT_FALSE(cursor.stats()->subpatterns.empty());
  const ExecStats::Subpattern& sub = cursor.stats()->subpatterns.front();
  // One conjunct, one constant (p0): the estimate is the exact P-count.
  EXPECT_EQ(sub.est_rows, 16.0);
}

}  // namespace
}  // namespace wdsparql
