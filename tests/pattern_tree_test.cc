#include <gtest/gtest.h>

#include <algorithm>

#include "ptree/pattern_tree.h"
#include "ptree/subtree.h"
#include "rdf/generator.h"
#include "support/testlib.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class PatternTreeTest : public ::testing::Test {
 protected:
  TermId V(const char* name) { return pool_.InternVariable(name); }
  TermId I(const char* name) { return pool_.InternIri(name); }

  TripleSet OneTriple(TermId s, TermId p, TermId o) {
    TripleSet set;
    set.Insert(Triple(s, p, o));
    return set;
  }

  TermPool pool_;
};

TEST_F(PatternTreeTest, ConstructionAndAccessors) {
  PatternTree tree(OneTriple(V("x"), I("p"), V("y")));
  NodeId child = tree.AddNode(tree.root(), OneTriple(V("y"), I("q"), V("z")));
  NodeId grandchild = tree.AddNode(child, OneTriple(V("z"), I("r"), V("w")));

  EXPECT_EQ(tree.NumNodes(), 3);
  EXPECT_EQ(tree.parent(child), tree.root());
  EXPECT_EQ(tree.parent(grandchild), child);
  EXPECT_EQ(tree.children(tree.root()).size(), 1u);
  EXPECT_EQ(tree.variables(child), (std::vector<TermId>{V("y"), V("z")}));
  EXPECT_EQ(tree.TreePattern().size(), 3u);
  EXPECT_EQ(tree.TreeVariables().size(), 4u);
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_TRUE(tree.IsNrNormalForm());
}

TEST_F(PatternTreeTest, ValidateRejectsDisconnectedVariable) {
  // ?x in root and grandchild but not in the middle node: condition 3
  // fails.
  PatternTree tree(OneTriple(V("x"), I("p"), V("y")));
  NodeId child = tree.AddNode(tree.root(), OneTriple(V("y"), I("q"), V("z")));
  tree.AddNode(child, OneTriple(V("x"), I("r"), V("w")));
  EXPECT_FALSE(tree.Validate().ok());
}

TEST_F(PatternTreeTest, NrNormalFormDetection) {
  PatternTree tree(OneTriple(V("x"), I("p"), V("y")));
  tree.AddNode(tree.root(), OneTriple(V("x"), I("q"), V("y")));  // No new var.
  EXPECT_FALSE(tree.IsNrNormalForm());
}

TEST_F(PatternTreeTest, NrNormalFormDeletesChildlessRedundantNode) {
  PatternTree tree(OneTriple(V("x"), I("p"), V("y")));
  tree.AddNode(tree.root(), OneTriple(V("x"), I("q"), V("y")));
  tree.ToNrNormalForm();
  EXPECT_EQ(tree.NumNodes(), 1);
  EXPECT_TRUE(tree.IsNrNormalForm());
}

TEST_F(PatternTreeTest, NrNormalFormPushesGateIntoChildren) {
  PatternTree tree(OneTriple(V("x"), I("p"), V("y")));
  NodeId gate = tree.AddNode(tree.root(), OneTriple(V("x"), I("q"), V("y")));
  tree.AddNode(gate, OneTriple(V("y"), I("r"), V("z")));
  tree.ToNrNormalForm();
  ASSERT_EQ(tree.NumNodes(), 2);
  EXPECT_TRUE(tree.IsNrNormalForm());
  // The former grandchild now hangs off the root and carries the gate's
  // triple.
  NodeId child = tree.children(tree.root())[0];
  EXPECT_EQ(tree.pattern(child).size(), 2u);
  EXPECT_TRUE(tree.pattern(child).Contains(Triple(V("x"), I("q"), V("y"))));
  EXPECT_TRUE(tree.pattern(child).Contains(Triple(V("y"), I("r"), V("z"))));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST_F(PatternTreeTest, ToStringShowsStructure) {
  PatternTree tree(OneTriple(V("x"), I("p"), V("y")));
  tree.AddNode(tree.root(), OneTriple(V("y"), I("q"), V("z")));
  std::string dump = tree.ToString(pool_);
  EXPECT_NE(dump.find("node 0"), std::string::npos);
  EXPECT_NE(dump.find("?x"), std::string::npos);
}

// --- Subtree calculus ----------------------------------------------------

class SubtreeTest : public PatternTreeTest {
 protected:
  /// Builds the T1 member of the paper's F_k family for k = 2:
  /// root {(?x,p,?y)}; children n11 = {(?z,q,?x)}, n12 = clique + pendant.
  PatternTree MakeT1() {
    PatternForest forest = MakeFkForest(&pool_, 2);
    return forest.trees[0];
  }
};

TEST_F(SubtreeTest, EnumerationCountsMatchFormula) {
  PatternTree t1 = MakeT1();
  int count = 0;
  EnumerateSubtrees(t1, [&](const Subtree&) { ++count; });
  // Root with two leaf children: subsets of children = 4 subtrees.
  EXPECT_EQ(count, 4);
  EXPECT_DOUBLE_EQ(CountSubtrees(t1), 4.0);
}

TEST_F(SubtreeTest, DeepTreeSubtreeCount) {
  PatternTree tree(OneTriple(V("a"), I("p"), V("b")));
  NodeId c1 = tree.AddNode(tree.root(), OneTriple(V("b"), I("p"), V("c")));
  tree.AddNode(c1, OneTriple(V("c"), I("p"), V("d")));
  tree.AddNode(tree.root(), OneTriple(V("b"), I("q"), V("e")));
  // Chain of two: 1 + (1 + 1) choices... verify against enumeration.
  int count = 0;
  EnumerateSubtrees(tree, [&](const Subtree&) { ++count; });
  EXPECT_DOUBLE_EQ(CountSubtrees(tree), static_cast<double>(count));
  EXPECT_EQ(count, 6);  // (1 + chain of 2 -> 2 options... ) x (leaf: 2) = 3*2.
}

TEST_F(SubtreeTest, SubtreesContainRootAndAreParentClosed) {
  PatternTree t1 = MakeT1();
  EnumerateSubtrees(t1, [&](const Subtree& subtree) {
    EXPECT_TRUE(subtree.Contains(t1.root()));
    for (NodeId n : subtree.nodes) {
      if (n != t1.root()) {
        EXPECT_TRUE(subtree.Contains(t1.parent(n)));
      }
    }
  });
}

TEST_F(SubtreeTest, SubtreeChildrenAreComplement) {
  PatternTree t1 = MakeT1();
  EnumerateSubtrees(t1, [&](const Subtree& subtree) {
    for (NodeId c : SubtreeChildren(subtree)) {
      EXPECT_FALSE(subtree.Contains(c));
      EXPECT_TRUE(subtree.Contains(t1.parent(c)));
    }
  });
}

TEST_F(SubtreeTest, MaximalSubtreeWithVars) {
  PatternTree t1 = MakeT1();
  // vars {?x, ?y}: only the root qualifies.
  std::vector<TermId> vars = {V("x"), V("y")};
  std::sort(vars.begin(), vars.end());
  auto subtree = MaximalSubtreeWithVars(t1, vars);
  ASSERT_TRUE(subtree.has_value());
  EXPECT_EQ(subtree->nodes, (std::vector<NodeId>{0}));

  // vars {?x} misses the root variable ?y.
  std::vector<TermId> too_small = {V("x")};
  EXPECT_FALSE(MaximalSubtreeWithVars(t1, too_small).has_value());
}

TEST_F(SubtreeTest, FindWitnessSubtreeRequiresExactVars) {
  PatternTree t1 = MakeT1();
  std::vector<TermId> vars = {V("x"), V("y"), V("z")};
  std::sort(vars.begin(), vars.end());
  auto witness = FindWitnessSubtree(t1, vars);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->nodes.size(), 2u);  // Root + n11.

  // Superset vars that no subtree hits exactly.
  std::vector<TermId> off = {V("x"), V("y"), V("nosuch")};
  std::sort(off.begin(), off.end());
  EXPECT_FALSE(FindWitnessSubtree(t1, off).has_value());
}

TEST_F(SubtreeTest, FindMatchingSubtreeFollowsMu) {
  PatternTree t1 = MakeT1();
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("c", "q", "a");

  Mapping mu_root = testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}});
  auto match = FindMatchingSubtree(t1, mu_root, g.triples());
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->nodes, (std::vector<NodeId>{0}));

  Mapping mu_with_z =
      testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}, {"z", "c"}});
  match = FindMatchingSubtree(t1, mu_with_z, g.triples());
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->nodes.size(), 2u);

  // mu whose domain is not covered: no subtree.
  Mapping mu_widow = testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}, {"w", "c"}});
  EXPECT_FALSE(FindMatchingSubtree(t1, mu_widow, g.triples()).has_value());

  // mu violating the root pattern: no subtree.
  Mapping mu_bad = testlib::MakeMapping(&pool_, {{"x", "b"}, {"y", "a"}});
  EXPECT_FALSE(FindMatchingSubtree(t1, mu_bad, g.triples()).has_value());
}

TEST_F(SubtreeTest, SubtreePatternAndVariables) {
  PatternTree t1 = MakeT1();
  Subtree full;
  full.tree = &t1;
  full.nodes = {0, 1, 2};
  TripleSet pattern = SubtreePattern(full);
  EXPECT_EQ(pattern.size(), t1.TreePattern().size());
  EXPECT_EQ(SubtreeVariables(full), t1.TreeVariables());
}

}  // namespace
}  // namespace wdsparql
