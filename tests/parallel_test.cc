#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "rdf/graph.h"
#include "support/testlib.h"
#include "util/rng.h"
#include "wdsparql/wdsparql.h"

/// \file
/// Parallel query execution over one pinned ReadView: the differential
/// and stress harness. The core property under test is semantic
/// transparency — `ExecOptions::parallelism` must never change the
/// delivered solution *set*, only how many threads produce it — checked
/// three ways on every randomly generated case:
///
///   serial indexed  ==  parallel indexed (1/2/4/8 workers)
///                   ==  naive-hash oracle,
///
/// all bound to the same `Snapshot` while a mutation stream churns the
/// database around them (the naive oracle materialises a private copy of
/// the pinned view at Open, so it too reads frozen state — that is what
/// makes the three-way comparison meaningful under a live writer).
///
/// The suite runs under ThreadSanitizer in CI (the `tsan` job's regex
/// includes it): assertions are differential, never timing based, and
/// worker-thread failures are counted into atomics and asserted on the
/// main thread.

namespace wdsparql {
namespace {

/// Sorted rendered solutions of one execution; optionally reports the
/// cursor's final state.
std::vector<std::string> DrainSorted(Cursor cursor, const TermPool& pool,
                                     Cursor::State* final_state = nullptr) {
  std::vector<std::string> out;
  while (cursor.Next()) out.push_back(cursor.Row().ToString(pool));
  if (final_state != nullptr) *final_state = cursor.state();
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------
// Randomized differential property: ~200 generated
// (pattern, dataset, mutation-interleaving) cases.
// ---------------------------------------------------------------------

TEST(ParallelDifferentialTest, ParallelMatchesSerialAndNaiveOracleUnderChurn) {
  constexpr int kCases = 200;
  constexpr uint32_t kWorkerCounts[] = {1, 2, 4, 8};
  for (int seed = 0; seed < kCases; ++seed) {
    SCOPED_TRACE("case seed=" + std::to_string(seed));
    Rng rng(static_cast<uint64_t>(seed) * 0x9e3779b9u + 0xe18);
    TermPool pool;
    DatabaseOptions dopts;
    // Vary the merge threshold so cases exercise different delta/base
    // shapes (including mid-case merges triggered by the churn below).
    dopts.merge_threshold = 4 + rng.NextBounded(24);
    Database db(&pool, dopts);

    // One random well-designed pattern and one random dataset per case.
    testlib::RandomPatternOptions popts;
    popts.max_depth = 2;
    popts.num_predicates = 3;
    PatternPtr pattern = testlib::RandomWellDesignedPattern(&rng, &pool, popts);
    RdfGraph staged(&pool);
    testlib::SmallWorkloadGraph(&rng, 6, 24 + static_cast<int>(rng.NextBounded(16)),
                                3, &staged);
    std::vector<Triple> triples = staged.triples().triples();

    // Load a prefix, snapshot, then keep mutating: the suffix plus random
    // removals land *after* the pin, so every execution below must see
    // exactly the prefix state however the interleaving continues.
    std::size_t prefix = triples.size() / 2 + rng.NextBounded(triples.size() / 4 + 1);
    for (std::size_t i = 0; i < prefix; ++i) db.AddTriple(triples[i]);

    Statement stmt = db.OpenSession().PrepareParsed(pattern);
    ASSERT_TRUE(stmt.ok()) << stmt.diagnostics().ToString();
    SessionOptions naive_opts;
    naive_opts.backend = Backend::kNaiveHash;
    Statement oracle = db.OpenSession(naive_opts).PrepareParsed(pattern);
    ASSERT_TRUE(oracle.ok()) << oracle.diagnostics().ToString();

    Snapshot snap = db.GetSnapshot();
    Cursor::State state = Cursor::State::kUnopened;
    std::vector<std::string> expected = DrainSorted(stmt.Execute(snap), pool, &state);
    ASSERT_EQ(state, Cursor::State::kExhausted);

    // Mutation interleaving step 1: the rest of the dataset plus some
    // removals of rows the snapshot CAN see — if any backend leaks live
    // state, the comparisons below diverge.
    {
      WriteBatch batch;
      for (std::size_t i = prefix; i < triples.size(); ++i) {
        batch.Add(pool, triples[i]);
      }
      for (int r = 0; r < 4 && prefix > 0; ++r) {
        batch.Remove(pool, triples[rng.NextBounded(prefix)]);
      }
      ASSERT_TRUE(db.Apply(std::move(batch)).ok());
    }

    EXPECT_EQ(expected, DrainSorted(oracle.Execute(snap), pool))
        << "naive oracle diverged from the pinned serial run";

    for (uint32_t workers : kWorkerCounts) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      ExecOptions exec;
      exec.parallelism = workers;
      // Small check intervals on some cases: more claim/stop traffic.
      exec.check_interval = rng.NextBernoulli(0.3) ? 4 : 64;
      Cursor cursor = stmt.Execute(snap, exec);
      std::vector<std::string> got;
      // Mutation interleaving step 2: mutate and compact *while* the
      // parallel worker pool is live, between the first pull and the
      // drain of the remaining rows.
      if (cursor.Next()) {
        got.push_back(cursor.Row().ToString(pool));
        db.AddTriple("churn-s" + std::to_string(seed), "p0",
                     "churn-o" + std::to_string(workers));
        if (workers == 4) db.Compact();
        while (cursor.Next()) got.push_back(cursor.Row().ToString(pool));
      }
      EXPECT_EQ(cursor.state(), Cursor::State::kExhausted);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(expected, got) << "parallel run diverged from serial";
    }
  }
}

// ---------------------------------------------------------------------
// Stress: many parallel-query cursors vs a live writer and Compact.
// ---------------------------------------------------------------------

TEST(ParallelStressTest, ParallelCursorsAgainstLiveWriterAndCompact) {
  TermPool pool;
  DatabaseOptions dopts;
  dopts.merge_threshold = 16;  // Merge churn mid-flight.
  Database db(&pool, dopts);
  Rng rng(0xe18a);
  for (int i = 0; i < 160; ++i) {
    db.AddTriple("n" + std::to_string(rng.NextBounded(24)), "p0",
                 "n" + std::to_string(rng.NextBounded(24)));
    db.AddTriple("n" + std::to_string(rng.NextBounded(24)), "p1",
                 "n" + std::to_string(rng.NextBounded(24)));
  }
  Statement stmt = db.OpenSession().Prepare("((?x p0 ?y) AND (?y p1 ?z))");
  ASSERT_TRUE(stmt.ok());
  Snapshot snap = db.GetSnapshot();
  const std::vector<std::string> expected = DrainSorted(stmt.Execute(snap), pool);
  ASSERT_FALSE(expected.empty());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> bad_states{0};

  // One writer: inserts, removals, periodic Compact — every publish and
  // base-run replacement races the live worker pools below.
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      WriteBatch batch;
      batch.Add("w" + std::to_string(i), "p0", "w" + std::to_string(i + 1));
      batch.Remove("w" + std::to_string(i / 2), "p0",
                   "w" + std::to_string(i / 2 + 1));
      (void)db.Apply(std::move(batch));
      if (++i % 8 == 0) db.Compact();
    }
  });

  // Four reader threads, each repeatedly running a *parallel* execution
  // bound to the shared snapshot (and occasionally to a fresh snapshot,
  // checked against its own serial run).
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < 6; ++iter) {
        ExecOptions exec;
        exec.parallelism = 2 + static_cast<uint32_t>((t + iter) % 3) * 2;
        Cursor::State state = Cursor::State::kUnopened;
        if (iter % 3 == 2) {
          // Fresh pin: parallel vs serial on the same new snapshot.
          Snapshot fresh = db.GetSnapshot();
          std::vector<std::string> serial =
              DrainSorted(stmt.Execute(fresh), pool);
          std::vector<std::string> par =
              DrainSorted(stmt.Execute(fresh, exec), pool, &state);
          if (par != serial) mismatches.fetch_add(1);
          if (state != Cursor::State::kExhausted) bad_states.fetch_add(1);
        } else {
          std::vector<std::string> got =
              DrainSorted(stmt.Execute(snap, exec), pool, &state);
          if (got != expected) mismatches.fetch_add(1);
          if (state != Cursor::State::kExhausted) bad_states.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(bad_states.load(), 0u);
}

// ---------------------------------------------------------------------
// Early-exit regression: row_limit=1 on a large enumeration must stop
// after a bounded amount of candidate work — serially and in parallel.
// ---------------------------------------------------------------------

/// A join with a large answer product: a_i -p0-> m_j -p1-> b_k gives
/// 32*4*32 = 4096 answers from 256 triples.
void BuildWideJoin(Database* db) {
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 4; ++j) {
      db->AddTriple("a" + std::to_string(i), "p0", "m" + std::to_string(j));
      db->AddTriple("m" + std::to_string(j), "p1", "b" + std::to_string(i));
    }
  }
}

TEST(ParallelEarlyExitTest, RowLimitOneStopsAfterBoundedWorkSerially) {
  TermPool pool;
  Database db(&pool);
  BuildWideJoin(&db);
  Statement stmt = db.OpenSession().Prepare("((?x p0 ?y) AND (?y p1 ?z))");
  ASSERT_TRUE(stmt.ok());

  // Establish the size of the full space (and that full runs count it).
  ExecOptions full;
  full.collect_stats = true;
  Cursor all = stmt.Execute(full);
  uint64_t total = 0;
  while (all.Next()) ++total;
  ASSERT_EQ(total, 4096u);
  ASSERT_NE(all.stats(), nullptr);
  const uint64_t full_candidates = all.stats()->candidates;
  ASSERT_GE(full_candidates, total);

  // row_limit=1: the serial engine generates candidates lazily, so the
  // first emitted row costs O(1) candidates — not a materialised
  // subtree batch. This is the regression guard for the suspendable
  // join: a batching engine would show ~4096 candidates here.
  ExecOptions exec;
  exec.row_limit = 1;
  exec.collect_stats = true;
  Cursor cursor = stmt.Execute(exec);
  ASSERT_TRUE(cursor.Next());
  EXPECT_FALSE(cursor.Next());
  EXPECT_EQ(cursor.state(), Cursor::State::kLimited);
  ASSERT_NE(cursor.stats(), nullptr);
  EXPECT_LE(cursor.stats()->candidates, 4u);
  EXPECT_LT(cursor.stats()->values_probed, full_candidates / 4);
}

TEST(ParallelEarlyExitTest, RowLimitOneStopsWorkersWithinOneCheckInterval) {
  TermPool pool;
  Database db(&pool);
  BuildWideJoin(&db);
  Statement stmt = db.OpenSession().Prepare("((?x p0 ?y) AND (?y p1 ?z))");
  ASSERT_TRUE(stmt.ok());

  ExecOptions exec;
  exec.row_limit = 1;
  exec.parallelism = 4;
  exec.check_interval = 16;
  exec.collect_stats = true;
  Cursor cursor = stmt.Execute(exec);
  ASSERT_TRUE(cursor.Next());
  EXPECT_FALSE(cursor.Next());
  EXPECT_EQ(cursor.state(), Cursor::State::kLimited);
  ASSERT_NE(cursor.stats(), nullptr);
  // Workers race ahead of the consumer by at most the queue capacity
  // plus one check interval each before the shutdown flag lands; the
  // bound below is ~4x that slack and ~4x below the full space — a
  // worker pool that ignored the stop flag would show ~4096.
  EXPECT_LT(cursor.stats()->candidates, 1500u);
}

TEST(ParallelEarlyExitTest, CancelTokenStopsParallelWorkersPromptly) {
  TermPool pool;
  Database db(&pool);
  BuildWideJoin(&db);
  Statement stmt = db.OpenSession().Prepare("((?x p0 ?y) AND (?y p1 ?z))");
  ASSERT_TRUE(stmt.ok());

  ExecOptions exec;
  exec.parallelism = 4;
  exec.check_interval = 16;
  exec.collect_stats = true;
  exec.cancel = MakeCancelToken();
  Cursor cursor = stmt.Execute(exec);
  ASSERT_TRUE(cursor.Next());
  exec.cancel->store(true);
  // The fired token beats any queued rows: the cursor refuses to keep
  // draining and reports the cancellation.
  EXPECT_FALSE(cursor.Next());
  EXPECT_EQ(cursor.state(), Cursor::State::kCancelled);
  EXPECT_EQ(cursor.diagnostics().code, QueryDiagnostics::Code::kCancelled);
  ASSERT_NE(cursor.stats(), nullptr);
  EXPECT_LT(cursor.stats()->candidates, 1500u);
}

// ---------------------------------------------------------------------
// Mode interactions.
// ---------------------------------------------------------------------

TEST(ParallelModeTest, NaiveBackendIgnoresParallelismAndRunsSerially) {
  TermPool pool;
  Database db(&pool);
  BuildWideJoin(&db);
  SessionOptions opts;
  opts.backend = Backend::kNaiveHash;
  Statement stmt = db.OpenSession(opts).Prepare("(?x p0 ?y)");
  ASSERT_TRUE(stmt.ok());
  ExecOptions exec;
  exec.parallelism = 8;  // Documented: ignored on the naive backend.
  Cursor::State state = Cursor::State::kUnopened;
  std::vector<std::string> got = DrainSorted(stmt.Execute(exec), pool, &state);
  EXPECT_EQ(state, Cursor::State::kExhausted);
  EXPECT_EQ(got, DrainSorted(stmt.Execute(), pool));
}

TEST(ParallelModeTest, ParallelRunReportsMergedStats) {
  TermPool pool;
  Database db(&pool);
  BuildWideJoin(&db);
  Statement stmt = db.OpenSession().Prepare("((?x p0 ?y) AND (?y p1 ?z))");
  ASSERT_TRUE(stmt.ok());

  ExecOptions serial;
  serial.collect_stats = true;
  Cursor sc = stmt.Execute(serial);
  while (sc.Next()) {
  }
  ASSERT_NE(sc.stats(), nullptr);

  ExecOptions par;
  par.collect_stats = true;
  par.parallelism = 4;
  Cursor pc = stmt.Execute(par);
  uint64_t rows = 0;
  while (pc.Next()) ++rows;
  ASSERT_NE(pc.stats(), nullptr);
  EXPECT_EQ(rows, 4096u);
  EXPECT_EQ(pc.stats()->rows_emitted, 4096u);
  // Every answer was generated by exactly one worker (the root-claim
  // partitioning), so the merged candidate count matches the serial
  // run's — parallelism duplicates scan setup, never candidate work.
  EXPECT_EQ(pc.stats()->candidates, sc.stats()->candidates);
  // The per-subpattern breakdown survives the cross-worker re-merge.
  ASSERT_FALSE(pc.stats()->subpatterns.empty());
  uint64_t subpattern_candidates = 0;
  for (const ExecStats::Subpattern& sp : pc.stats()->subpatterns) {
    subpattern_candidates += sp.candidates;
  }
  EXPECT_EQ(subpattern_candidates, pc.stats()->candidates);
}

}  // namespace
}  // namespace wdsparql
