#include <gtest/gtest.h>

#include <algorithm>

#include "ptree/semantics.h"
#include "rdf/generator.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "support/testlib.h"
#include "wd/domination.h"
#include "wd/eval.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  PatternForest Forest(const char* text) {
    auto pattern = ParsePattern(text, &pool_);
    EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
    auto forest = BuildPatternForest(pattern.value(), pool_);
    EXPECT_TRUE(forest.ok()) << forest.status().ToString();
    return std::move(forest).value();
  }

  TermPool pool_;
};

TEST_F(EvalTest, NaiveMatchesGroundTruthOnRandomInstances) {
  Rng rng(2718);
  for (int trial = 0; trial < 25; ++trial) {
    PatternPtr p = testlib::RandomWellDesignedUnion(&rng, &pool_, 2);
    auto forest = BuildPatternForest(p, pool_);
    ASSERT_TRUE(forest.ok());
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 14, 3, &g);
    std::vector<Mapping> answers = Evaluate(*p, g);
    for (const Mapping& probe : testlib::MembershipProbes(p, g, &rng, 8)) {
      bool expected =
          std::find(answers.begin(), answers.end(), probe) != answers.end();
      EXPECT_EQ(NaiveWdEval(forest.value(), g, probe), expected)
          << probe.ToString(pool_) << " on " << p->ToString(pool_);
    }
  }
}

TEST_F(EvalTest, PebbleIsAlwaysSound) {
  // Acceptance by the pebble algorithm certifies membership, for every k,
  // even on patterns whose domination width exceeds k.
  Rng rng(314);
  for (int trial = 0; trial < 20; ++trial) {
    PatternPtr p = testlib::RandomWellDesignedUnion(&rng, &pool_, 2);
    auto forest = BuildPatternForest(p, pool_);
    ASSERT_TRUE(forest.ok());
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 12, 3, &g);
    for (const Mapping& probe : testlib::MembershipProbes(p, g, &rng, 6)) {
      for (int k = 1; k <= 2; ++k) {
        if (PebbleWdEval(forest.value(), g, probe, k)) {
          EXPECT_TRUE(NaiveWdEval(forest.value(), g, probe))
              << "pebble accepted a non-answer at k=" << k;
        }
      }
    }
  }
}

TEST_F(EvalTest, PebbleCompleteOnBoundedDwRandomPatterns) {
  // Theorem 1 as a property test: whenever dw(P) <= k, the pebble
  // algorithm at k agrees exactly with the naive one.
  Rng rng(1618);
  int verified = 0;
  for (int trial = 0; trial < 20; ++trial) {
    testlib::RandomPatternOptions options;
    options.max_depth = 2;
    PatternPtr p = testlib::RandomWellDesignedUnion(&rng, &pool_, 2, options);
    auto forest = BuildPatternForest(p, pool_);
    ASSERT_TRUE(forest.ok());
    Result<int> dw = DominationWidth(forest.value(), &pool_);
    if (!dw.ok() || dw.value() > 3) continue;  // Outside the promise.
    int k = dw.value();
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 12, 3, &g);
    for (const Mapping& probe : testlib::MembershipProbes(p, g, &rng, 4)) {
      EXPECT_EQ(PebbleWdEval(forest.value(), g, probe, k),
                NaiveWdEval(forest.value(), g, probe))
          << "dw=" << k << " pattern=" << p->ToString(pool_);
      ++verified;
    }
  }
  EXPECT_GT(verified, 0) << "the sweep must exercise at least one instance";
}

TEST_F(EvalTest, FkFamilyPebbleAtK1MatchesNaive) {
  // dw(F_k) = 1 (Example 5): the Theorem 1 algorithm with k = 1 (2-pebble
  // game) is complete on the F_k family no matter how large the clique is.
  for (int k = 2; k <= 4; ++k) {
    PatternForest forest = MakeFkForest(&pool_, k);
    // Graph: p-edge, q-path, r-structure with and without cliques.
    RdfGraph g(&pool_);
    g.Insert("a", "p", "b");
    g.Insert("c", "q", "a");
    g.Insert("d", "q", "c");
    g.Insert("b", "r", "e");
    g.Insert("e", "r", "e");  // Self-loop: K_k folds in.

    Rng rng(k);
    std::vector<Mapping> probes;
    probes.push_back(testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}}));
    probes.push_back(
        testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}, {"z", "c"}}));
    probes.push_back(testlib::MakeMapping(
        &pool_, {{"x", "a"}, {"y", "b"}, {"z", "c"}, {"w", "d"}}));
    probes.push_back(testlib::MakeMapping(&pool_, {{"x", "b"}, {"y", "a"}}));
    for (const Mapping& probe : probes) {
      EXPECT_EQ(PebbleWdEval(forest, g, probe, 1), NaiveWdEval(forest, g, probe))
          << "k=" << k << " mu=" << probe.ToString(pool_);
    }
  }
}

TEST_F(EvalTest, FkFamilyAgreesWithLemma1OracleOnRandomData) {
  for (int k = 2; k <= 3; ++k) {
    PatternForest forest = MakeFkForest(&pool_, k);
    Rng rng(100 + k);
    for (int trial = 0; trial < 6; ++trial) {
      RdfGraph g2(&pool_);
      // Insert random p/q/r triples matching the family's predicates.
      for (int i = 0; i < 6; ++i) {
        std::string a = "n" + std::to_string(rng.NextBounded(4));
        std::string b = "n" + std::to_string(rng.NextBounded(4));
        g2.Insert(a, "p", b);
        std::string c = "n" + std::to_string(rng.NextBounded(4));
        g2.Insert(c, "q", a);
        if (rng.NextBernoulli(0.5)) g2.Insert(a, "r", b);
        if (rng.NextBernoulli(0.3)) g2.Insert(b, "r", b);
      }
      std::vector<Mapping> answers = EnumerateForestSolutions(forest, g2);
      for (const Mapping& mu : answers) {
        EXPECT_TRUE(NaiveWdEval(forest, g2, mu));
        EXPECT_TRUE(PebbleWdEval(forest, g2, mu, 1));
      }
      // Probe a few non-answers: root-shaped mappings that are answers of
      // nothing.
      Mapping junk = testlib::MakeMapping(&pool_, {{"x", "nosuch"}, {"y", "n0"}});
      EXPECT_FALSE(NaiveWdEval(forest, g2, junk));
      EXPECT_FALSE(PebbleWdEval(forest, g2, junk, 1));
    }
  }
}

TEST_F(EvalTest, BranchFamilyPebbleAtK1IsComplete) {
  // bw(T'_k) = 1: k = 1 suffices for the Section 3.2 family.
  for (int k = 2; k <= 4; ++k) {
    PatternForest forest;
    forest.trees.push_back(MakeBranchFamilyTree(&pool_, k));
    RdfGraph g(&pool_);
    g.Insert("a", "r", "a");  // Root self-loop; the clique folds onto it.
    g.Insert("a", "r", "b");

    Mapping mu = testlib::MakeMapping(&pool_, {{"y", "a"}});
    bool naive = NaiveWdEval(forest, g, mu);
    bool pebble = PebbleWdEval(forest, g, mu, 1);
    EXPECT_EQ(naive, pebble) << "k=" << k;
    // With the self-loop present the child always extends, so the bare
    // root mapping is not maximal.
    EXPECT_FALSE(naive);
  }
}

TEST_F(EvalTest, BranchFamilyRootOnlyAnswer) {
  for (int k = 2; k <= 4; ++k) {
    PatternForest forest;
    forest.trees.push_back(MakeBranchFamilyTree(&pool_, k));
    // Self-loop at a, but no r-edge leaving a to any clique-capable
    // structure... the loop itself hosts the clique, so remove extensions
    // by NOT having a loop: then the root (?y,r,?y) cannot match either.
    // Instead: loop at a plus an isolated r-edge elsewhere.
    RdfGraph g(&pool_);
    g.Insert("a", "r", "a");
    Mapping mu = testlib::MakeMapping(&pool_, {{"y", "a"}});
    // The child {(?y,r,?o1)} u K_k maps via o_i -> a: extension exists, so
    // mu is not an answer; the full mapping (everything to a) is.
    EXPECT_FALSE(NaiveWdEval(forest, g, mu));
    Mapping full = mu;
    for (int i = 1; i <= k; ++i) {
      ASSERT_TRUE(full.Bind(pool_.InternVariable("o" + std::to_string(i)),
                            pool_.InternIri("a")));
    }
    EXPECT_TRUE(NaiveWdEval(forest, g, full));
    EXPECT_TRUE(PebbleWdEval(forest, g, full, 1));
  }
}

TEST_F(EvalTest, StatsAreAccumulated) {
  PatternForest forest = Forest("(?x p ?y) OPT (?y q ?z)");
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  Mapping mu = testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}});
  EvalStats naive_stats;
  NaiveWdEval(forest, g, mu, &naive_stats);
  EXPECT_EQ(naive_stats.trees_probed, 1u);
  EXPECT_EQ(naive_stats.subtrees_matched, 1u);
  EXPECT_EQ(naive_stats.extension_tests, 1u);

  EvalStats pebble_stats;
  PebbleWdEval(forest, g, mu, 1, &pebble_stats);
  EXPECT_GT(pebble_stats.pebble_maps_created, 0u);
}

TEST_F(EvalTest, EmptyDomainMappingOnGroundPattern) {
  PatternForest forest = Forest("(a p b) OPT (b q ?z)");
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  Mapping empty;
  // (a p b) holds and (b q ?z) has no witness: the empty mapping is the
  // answer.
  EXPECT_TRUE(NaiveWdEval(forest, g, empty));
  g.Insert("b", "q", "c");
  // Now the child extends: the empty mapping is no longer maximal.
  EXPECT_FALSE(NaiveWdEval(forest, g, empty));
}

}  // namespace
}  // namespace wdsparql
