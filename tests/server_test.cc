#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "server/http_client.h"
#include "server/server.h"
#include "support/testlib.h"
#include "wdsparql/wdsparql.h"

/// \file
/// The HTTP serving front door, tested in-process: a `server::Server`
/// on an ephemeral port driven by the bundled `HttpClient` (and, for
/// the disconnect scenarios, raw sockets). Runs under ThreadSanitizer
/// in CI alongside the other concurrency suites — the server's worker
/// pool, the admission queue, /write commits racing streamed /query
/// responses, and the drain path are all genuinely multi-threaded here.

namespace wdsparql {
namespace server {
namespace {

/// A small fixed corpus: 60 triples over 3 predicates.
void Populate(Database* db) {
  for (int i = 0; i < 60; ++i) {
    db->AddTriple("http://t/s" + std::to_string(i % 10),
                  "http://t/p" + std::to_string(i % 3),
                  "http://t/o" + std::to_string(i));
  }
}

/// Starts a server over `db` with test endpoints enabled.
std::unique_ptr<Server> StartServer(Database* db, ServerOptions options = {}) {
  options.port = 0;  // Ephemeral.
  options.enable_test_endpoints = true;
  auto server = std::make_unique<Server>(db, options);
  Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return server;
}

HttpClient ClientFor(const Server& server) {
  return HttpClient("127.0.0.1", server.port());
}

/// Polls a predicate for up to ~15 s (metrics written by worker threads
/// land shortly after the response; never assert them race-sharp — and
/// under TSan on a loaded CI machine, scheduling can stall for seconds).
template <typename Predicate>
bool Eventually(Predicate&& predicate) {
  for (int i = 0; i < 3000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

// ---------------------------------------------------------------------
// Query round trips
// ---------------------------------------------------------------------

TEST(ServeQueryTest, StreamsRowsAndReportsExhaustion) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db);
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  ASSERT_TRUE(client.Post("/query", "(?s <http://t/p1> ?o)", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["transfer-encoding"], "chunked");
  EXPECT_NE(response.body.find("\"vars\":[\"?s\",\"?o\"]"), std::string::npos);
  EXPECT_NE(response.body.find("\"status\":\"exhausted\""), std::string::npos);
  EXPECT_NE(response.body.find("\"row_count\":20"), std::string::npos);
  // 20 rows, each ["s","o"].
  EXPECT_NE(response.body.find("[\"http://t/s1\",\"http://t/o1\"]"),
            std::string::npos);
  server->Stop();
}

TEST(ServeQueryTest, LimitTruncatesAndSaysSo) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db);
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  ASSERT_TRUE(client.Post("/query?limit=3", "(?s ?p ?o)", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"limited\""), std::string::npos);
  EXPECT_NE(response.body.find("\"row_count\":3"), std::string::npos);
  EXPECT_TRUE(Eventually(
      [&] { return db.metrics().counter("query.limited").value() >= 1; }));
  server->Stop();
}

TEST(ServeQueryTest, StatsParamAppendsExecStats) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db);
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  ASSERT_TRUE(client.Post("/query?stats=1", "(?s <http://t/p0> ?o)",
                          &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"stats\":{"), std::string::npos);
  EXPECT_NE(response.body.find("rows_emitted"), std::string::npos);

  // Without the param the tail carries no stats object.
  ASSERT_TRUE(client.Post("/query", "(?s <http://t/p0> ?o)", &response).ok());
  EXPECT_EQ(response.body.find("\"stats\":{"), std::string::npos);
  server->Stop();
}

TEST(ServeQueryTest, ServerDeadlineIsAHardCeiling) {
  Database db;
  // A cross-join explosion: enough rows that 1 ms cannot finish.
  // (One batched load — per-triple commits would dominate the test
  // under TSan.)
  std::string corpus;
  for (int i = 0; i < 400; ++i) {
    corpus += "<http://t/a" + std::to_string(i) + "> <http://t/p> <http://t/x> .\n";
    corpus += "<http://t/x> <http://t/q> <http://t/b" + std::to_string(i) + "> .\n";
  }
  ASSERT_TRUE(db.LoadNTriples(corpus).ok());
  ServerOptions options;
  options.default_deadline_ms = 1;
  auto server = StartServer(&db, options);
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  // The request asks for a *longer* deadline; the server ceiling wins.
  ASSERT_TRUE(client.Post("/query?deadline_ms=60000",
                          "(?a <http://t/p> ?x) AND (?x <http://t/q> ?b)",
                          &response).ok());
  EXPECT_EQ(response.status, 200);  // Streaming had begun; tail reports it.
  EXPECT_NE(response.body.find("\"status\":\"deadline_exceeded\""),
            std::string::npos)
      << response.body;
  EXPECT_TRUE(Eventually([&] {
    return db.metrics().counter("query.deadline_exceeded").value() >= 1;
  }));
  server->Stop();
}

TEST(ServeQueryTest, MalformedQueryGetsStructured400) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db);
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  ASSERT_TRUE(client.Post("/query", "((( nonsense", &response).ok());
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("\"code\":\"ParseError\""), std::string::npos);
  EXPECT_NE(response.body.find("\"message\""), std::string::npos);

  // Bad parameter values are 400 too, before any execution.
  ASSERT_TRUE(client.Post("/query?limit=banana", "(?s ?p ?o)", &response).ok());
  EXPECT_EQ(response.status, 400);
  server->Stop();
}

TEST(ServeHttpTest, RoutesAndMethodsAreEnforced) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db);
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  ASSERT_TRUE(client.Get("/nope", &response).ok());
  EXPECT_EQ(response.status, 404);
  ASSERT_TRUE(client.Get("/query", &response).ok());
  EXPECT_EQ(response.status, 405);
  ASSERT_TRUE(client.Post("/metrics", "x", &response).ok());
  EXPECT_EQ(response.status, 405);

  ASSERT_TRUE(client.Get("/healthz", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("\"triples\":60"), std::string::npos);

  ASSERT_TRUE(client.Get("/metrics", &response).ok());
  EXPECT_EQ(response.status, 200);
  // Verbatim DumpMetrics(kJson): instrument names present.
  EXPECT_NE(response.body.find("server.requests"), std::string::npos);
  server->Stop();
}

// ---------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------

TEST(ServeWriteTest, NTriplesBodyCommitsAsOneBatch) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db);
  HttpClient client = ClientFor(*server);

  uint64_t generation_before = db.generation();
  HttpResponse response;
  ASSERT_TRUE(client.Post("/write",
                          "<http://t/new1> <http://t/p9> <http://t/oX> .\n"
                          "<http://t/new2> <http://t/p9> <http://t/oX> .\n",
                          &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"added\":2"), std::string::npos);
  EXPECT_EQ(db.size(), 62u);
  // ONE WriteBatch: exactly one publish for the two triples.
  EXPECT_EQ(db.generation(), generation_before + 1);

  ASSERT_TRUE(client.Post("/write", "not n-triples at all", &response).ok());
  EXPECT_EQ(response.status, 400);
  EXPECT_EQ(db.size(), 62u);
  server->Stop();
}

TEST(ServeWriteTest, QueryStreamsPinOneGenerationAcrossConcurrentWrites) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db);
  HttpClient client = ClientFor(*server);

  // Hammer /query and /write concurrently; every query response must be
  // internally consistent (its row_count matches its rows) and each
  // write must apply atomically. TSan watches the rest.
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        HttpResponse response;
        Status status = client.Post("/query", "(?s <http://t/p1> ?o)", &response);
        if (!status.ok() || response.status != 200 ||
            response.body.find("\"status\":\"exhausted\"") == std::string::npos) {
          failed = true;
        }
        (void)t;
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 20; ++i) {
      HttpResponse response;
      std::string body = "<http://t/w" + std::to_string(i) +
                         "> <http://t/pw> <http://t/ow> .\n";
      Status status = client.Post("/write", body, &response);
      if (!status.ok() || response.status != 200) failed = true;
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(db.size(), 80u);
  server->Stop();
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(ServeOverloadTest, FullQueueShedsWith503AndRetryAfter) {
  Database db;
  Populate(&db);
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  auto server = StartServer(&db, options);
  HttpClient client = ClientFor(*server);

  // Park the one worker on /block, then fill the queue: connection 2
  // waits, connection 3 must be shed by the acceptor. No ASSERT while
  // the helper thread is joinable — a failed assertion would leave it
  // running and std::terminate the whole binary.
  std::thread blocked([&] {
    HttpResponse response;
    (void)client.Get("/block", &response);
  });
  bool worker_parked = Eventually(
      [&] { return db.metrics().gauge("server.inflight").value() == 1; });

  // Occupy the single queue slot with a connection that just waits.
  int parked_fd = DialTcp("127.0.0.1", server->port(), 2000);
  bool queue_full =
      worker_parked && parked_fd >= 0 &&
      Eventually(
          [&] { return db.metrics().gauge("server.queue_depth").value() == 1; });

  HttpResponse shed;
  bool shed_fetched = queue_full && client.Get("/healthz", &shed).ok();

  server->UnblockTestRequests();
  blocked.join();
  if (parked_fd >= 0) ::close(parked_fd);
  server->Stop();

  EXPECT_TRUE(worker_parked);
  EXPECT_TRUE(queue_full) << "parked_fd=" << parked_fd
      << " depth=" << db.metrics().gauge("server.queue_depth").value()
      << " inflight=" << db.metrics().gauge("server.inflight").value()
      << " rejected=" << db.metrics().counter("server.rejected").value()
      << " requests=" << db.metrics().counter("server.requests").value();
  ASSERT_TRUE(shed_fetched);
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(shed.headers["retry-after"], "1");
  EXPECT_GE(db.metrics().counter("server.rejected").value(), 1u);
}

// ---------------------------------------------------------------------
// Client disconnect mid-stream
// ---------------------------------------------------------------------

TEST(ServeDisconnectTest, EarlyCloseCancelsTheCursorAndReleasesItsView) {
  Database db;
  // Enough cross-join answers that the stream far outlives the client.
  std::string corpus;
  for (int i = 0; i < 300; ++i) {
    corpus += "<http://t/a" + std::to_string(i) + "> <http://t/p> <http://t/x> .\n";
    corpus += "<http://t/x> <http://t/q> <http://t/b" + std::to_string(i) + "> .\n";
  }
  ASSERT_TRUE(db.LoadNTriples(corpus).ok());
  ServerOptions options;
  options.disconnect_probe_interval = 4;
  options.default_deadline_ms = 60'000;  // The probe, not the deadline, ends it.
  auto server = StartServer(&db, options);

  int64_t views_baseline = db.metrics().gauge("views.live").value();
  uint64_t closed_early_before =
      db.metrics().counter("query.closed_early").value();

  // Raw socket: send the request, read a little of the stream, vanish.
  // Generous socket timeout: under TSan on a loaded machine the first
  // streamed row can take seconds to arrive.
  int fd = DialTcp("127.0.0.1", server->port(), 30'000);
  ASSERT_GE(fd, 0);
  std::string body = "(?a <http://t/p> ?x) AND (?x <http://t/q> ?b)";
  std::string request =
      "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  char sink[1024];
  ASSERT_GT(::recv(fd, sink, sizeof(sink), 0), 0);  // Stream is flowing.
  ::close(fd);  // Walk away mid-stream.

  // The server must notice, fire the token, close the cursor and drop
  // the pinned view — no orphaned cursor keeps the snapshot alive.
  EXPECT_TRUE(Eventually([&] {
    return db.metrics().counter("server.client_disconnects").value() >= 1;
  }));
  EXPECT_TRUE(Eventually([&] {
    return db.metrics().gauge("views.live").value() <= views_baseline;
  }));
  EXPECT_TRUE(Eventually([&] {
    return db.metrics().counter("query.closed_early").value() >
           closed_early_before;
  }));
  server->Stop();
}

// ---------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------

TEST(ServeDrainTest, StopFinishesInFlightRequestsBeforeReturning) {
  Database db;
  Populate(&db);
  ServerOptions options;
  options.num_workers = 2;
  auto server = StartServer(&db, options);
  HttpClient client = ClientFor(*server);
  uint16_t port = server->port();

  // One request parks on /block (in flight when Stop begins).
  std::atomic<int> blocked_status{0};
  std::thread in_flight([&] {
    HttpResponse response;
    Status status = client.Get("/block", &response);
    blocked_status = status.ok() ? response.status : -1;
  });
  bool parked = Eventually(
      [&] { return db.metrics().gauge("server.inflight").value() >= 1; });

  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server->UnblockTestRequests();  // Drain releases the parked request.
  });
  server->Stop();  // Must not return before the in-flight request finished.
  stopper.join();
  in_flight.join();
  EXPECT_TRUE(parked);
  EXPECT_EQ(blocked_status.load(), 200);

  // Drained means drained: new connections are refused.
  HttpResponse after;
  EXPECT_FALSE(HttpClient("127.0.0.1", port, 500).Get("/healthz", &after).ok());
}

// ---------------------------------------------------------------------
// Snapshot-bound membership (/contains and the API under it)
// ---------------------------------------------------------------------

TEST(SnapshotContainsTest, DecidesAgainstThePinnedStateNotTheLiveOne) {
  Database db;
  db.AddTriple("http://t/a", "http://t/knows", "http://t/b");
  Session session = db.OpenSession();
  Statement stmt = session.Prepare("(?x <http://t/knows> ?y)");
  ASSERT_TRUE(stmt.ok());

  Snapshot before = db.GetSnapshot();
  db.AddTriple("http://t/c", "http://t/knows", "http://t/d");
  Snapshot after = db.GetSnapshot();

  TermPool& pool = db.pool();
  Mapping old_pair;
  old_pair.Bind(pool.InternVariable("x"), pool.InternIri("http://t/a"));
  old_pair.Bind(pool.InternVariable("y"), pool.InternIri("http://t/b"));
  Mapping new_pair;
  new_pair.Bind(pool.InternVariable("x"), pool.InternIri("http://t/c"));
  new_pair.Bind(pool.InternVariable("y"), pool.InternIri("http://t/d"));

  EXPECT_TRUE(stmt.Contains(old_pair, before));
  EXPECT_FALSE(stmt.Contains(new_pair, before));  // Not in the old state.
  EXPECT_TRUE(stmt.Contains(new_pair, after));
  EXPECT_TRUE(stmt.Contains(new_pair));  // Live overload sees it too.

  // Refusals collapse to false: invalid snapshot, foreign snapshot,
  // naive backend.
  EXPECT_FALSE(stmt.Contains(old_pair, Snapshot()));
  Database other;
  other.AddTriple("http://t/a", "http://t/knows", "http://t/b");
  EXPECT_FALSE(stmt.Contains(old_pair, other.GetSnapshot()));
  SessionOptions naive;
  naive.backend = Backend::kNaiveHash;
  Statement naive_stmt = db.OpenSession(naive).Prepare("(?x <http://t/knows> ?y)");
  ASSERT_TRUE(naive_stmt.ok());
  EXPECT_FALSE(naive_stmt.Contains(old_pair, before));
}

TEST(ServeContainsTest, EndpointAnswersMembershipOverThePinnedSnapshot) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db);
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  // s1 -p1-> o1 exists (i = 1).
  ASSERT_TRUE(client.Post("/contains",
                          "(?s <http://t/p1> ?o)\n"
                          "?s <http://t/s1>\n?o <http://t/o1>\n",
                          &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"contains\":true"), std::string::npos);

  // Interned terms, but not a triple.
  ASSERT_TRUE(client.Post("/contains",
                          "(?s <http://t/p1> ?o)\n"
                          "?s <http://t/s1>\n?o <http://t/o2>\n",
                          &response).ok());
  EXPECT_NE(response.body.find("\"contains\":false"), std::string::npos);

  // A spelling the pool never saw: decided absent without running.
  ASSERT_TRUE(client.Post("/contains",
                          "(?s <http://t/p1> ?o)\n?s <http://t/mars>\n",
                          &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"contains\":false"), std::string::npos);

  // A variable the pattern does not bind: 400.
  ASSERT_TRUE(client.Post("/contains",
                          "(?s <http://t/p1> ?o)\n?z <http://t/s1>\n",
                          &response).ok());
  EXPECT_EQ(response.status, 400);
  server->Stop();
}

// ---------------------------------------------------------------------
// Request identity, tracing, logs, Prometheus
// ---------------------------------------------------------------------

TEST(ServeTraceTest, GeneratesAndEchoesRequestId) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db, [] {
    ServerOptions options;
    options.quiet = true;
    return options;
  }());
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  ASSERT_TRUE(client.Post("/query", "(?s <http://t/p1> ?o)", &response).ok());
  ASSERT_EQ(response.status, 200);
  std::string generated = response.headers["x-request-id"];
  ASSERT_EQ(generated.size(), 16u);
  EXPECT_EQ(generated.find_first_not_of("0123456789abcdef"),
            std::string::npos);

  // A client-supplied id is echoed verbatim — on every endpoint.
  ASSERT_TRUE(client.Fetch("GET", "/healthz", "", &response,
                           {{"X-Request-Id", "my-custom-id-42"}})
                  .ok());
  EXPECT_EQ(response.headers["x-request-id"], "my-custom-id-42");
  server->Stop();
}

TEST(ServeTraceTest, DebugTraceRoundTripByRequestId) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db, [] {
    ServerOptions options;
    options.quiet = true;
    return options;
  }());
  HttpClient client = ClientFor(*server);

  // A hex request id maps directly onto the trace id, so the trace of
  // THIS request is findable in /debug/trace by the id alone.
  HttpResponse response;
  ASSERT_TRUE(client.Fetch("POST", "/query", "(?s <http://t/p1> ?o)",
                           &response, {{"X-Request-Id", "cafe1234"}})
                  .ok());
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.headers["x-request-id"], "cafe1234");

  // The trace flushes right after the response bytes; poll briefly.
  HttpResponse dump;
  ASSERT_TRUE(Eventually([&] {
    if (!client.Get("/debug/trace?n=8", &dump).ok()) return false;
    return dump.body.find("00000000cafe1234") != std::string::npos;
  }));
  EXPECT_EQ(dump.status, 200);
  EXPECT_NE(dump.body.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(dump.body.find("\"name\":\"enumerate\""), std::string::npos);
  EXPECT_NE(dump.body.find("\"name\":\"subtree\""), std::string::npos);
  server->Stop();
}

TEST(ServeTraceTest, TraceParamInlinesSpans) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db, [] {
    ServerOptions options;
    options.quiet = true;
    return options;
  }());
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  ASSERT_TRUE(
      client.Post("/query?trace=1", "(?s <http://t/p1> ?o)", &response).ok());
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"trace\":{"), std::string::npos);
  EXPECT_NE(response.body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"enumerate\""), std::string::npos);
  // The inline trace id matches the echoed request id.
  EXPECT_NE(response.body.find("\"trace_id\":\"" +
                               response.headers["x-request-id"] + "\""),
            std::string::npos);

  // Without the param the tail carries no trace object.
  ASSERT_TRUE(client.Post("/query", "(?s <http://t/p1> ?o)", &response).ok());
  EXPECT_EQ(response.body.find("\"trace\":{"), std::string::npos);
  server->Stop();
}

TEST(ServeTraceTest, TracingDisabledServesEverythingStill) {
  DatabaseOptions db_options;
  db_options.trace_capacity = 0;  // Flight recorder off.
  Database db(db_options);
  Populate(&db);
  auto server = StartServer(&db, [] {
    ServerOptions options;
    options.quiet = true;
    return options;
  }());
  HttpClient client = ClientFor(*server);

  HttpResponse response;
  ASSERT_TRUE(
      client.Post("/query?trace=1", "(?s <http://t/p1> ?o)", &response).ok());
  EXPECT_EQ(response.status, 200);
  // Requests still get ids; there are just no spans behind them.
  EXPECT_FALSE(response.headers["x-request-id"].empty());
  EXPECT_EQ(response.body.find("\"trace\":{"), std::string::npos);
  ASSERT_TRUE(client.Get("/debug/trace", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "{\"traces\":[]}");
  server->Stop();
}

TEST(ServeLogTest, AccessLogOneLinePerRequestAndQuietSuppresses) {
  Database db;
  Populate(&db);
  std::FILE* log = std::tmpfile();
  ASSERT_NE(log, nullptr);
  {
    ServerOptions options;
    options.log_stream = log;
    auto server = StartServer(&db, options);
    HttpClient client = ClientFor(*server);
    HttpResponse response;
    ASSERT_TRUE(client.Fetch("POST", "/query", "(?s <http://t/p1> ?o)",
                             &response, {{"X-Request-Id", "log-test-id"}})
                    .ok());
    ASSERT_TRUE(client.Get("/healthz", &response).ok());
    server->Stop();  // Drain: every access-log line is flushed.
  }
  std::rewind(log);
  std::string contents;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), log)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(log);
  EXPECT_NE(contents.find("\"request_id\":\"log-test-id\""),
            std::string::npos);
  EXPECT_NE(contents.find("\"path\":\"/query\""), std::string::npos);
  EXPECT_NE(contents.find("\"path\":\"/healthz\""), std::string::npos);
  EXPECT_NE(contents.find("\"status\":200"), std::string::npos);
  EXPECT_NE(contents.find("\"rows\":20"), std::string::npos);

  // --quiet: same traffic, silent log.
  std::FILE* quiet_log = std::tmpfile();
  ASSERT_NE(quiet_log, nullptr);
  {
    ServerOptions options;
    options.log_stream = quiet_log;
    options.quiet = true;
    auto server = StartServer(&db, options);
    HttpClient client = ClientFor(*server);
    HttpResponse response;
    ASSERT_TRUE(client.Get("/healthz", &response).ok());
    server->Stop();
  }
  std::rewind(quiet_log);
  EXPECT_EQ(std::fread(buffer, 1, sizeof(buffer), quiet_log), 0u);
  std::fclose(quiet_log);
}

TEST(ServeLogTest, SlowQueryLogCapturesExplain) {
  Database db;
  Populate(&db);
  std::FILE* log = std::tmpfile();
  ASSERT_NE(log, nullptr);
  {
    ServerOptions options;
    options.log_stream = log;
    options.quiet = true;          // Isolate the slow-query lines.
    options.slow_query_ms = 0;     // Every query is "slow".
    auto server = StartServer(&db, options);
    HttpClient client = ClientFor(*server);
    HttpResponse response;
    ASSERT_TRUE(client.Fetch("POST", "/query", "(?s <http://t/p1> ?o)",
                             &response, {{"X-Request-Id", "slow-one"}})
                    .ok());
    ASSERT_EQ(response.status, 200);
    // The forced collect_stats stays server-side: the response tail has
    // no stats object unless the client asked.
    EXPECT_EQ(response.body.find("\"stats\":{"), std::string::npos);
    server->Stop();
  }
  std::rewind(log);
  std::string contents;
  char buffer[8192];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), log)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(log);
  EXPECT_NE(contents.find("\"slow_query\":true"), std::string::npos);
  EXPECT_NE(contents.find("\"request_id\":\"slow-one\""), std::string::npos);
  EXPECT_NE(contents.find("\"pattern\":\"(?s <http://t/p1> ?o)\""),
            std::string::npos);
  EXPECT_NE(contents.find("\"outcome\":\"exhausted\""), std::string::npos);
  EXPECT_NE(contents.find("\"rows\":20"), std::string::npos);
  // The captured EXPLAIN tree: the ExecStats JSON, subpatterns included.
  EXPECT_NE(contents.find("\"explain\":{"), std::string::npos);
  EXPECT_NE(contents.find("rows_emitted"), std::string::npos);
  EXPECT_NE(contents.find("subpatterns"), std::string::npos);
}

TEST(ServeMetricsTest, PrometheusFormatExposition) {
  Database db;
  Populate(&db);
  auto server = StartServer(&db, [] {
    ServerOptions options;
    options.quiet = true;
    return options;
  }());
  HttpClient client = ClientFor(*server);

  // One query first so the request histogram has observations.
  HttpResponse response;
  ASSERT_TRUE(client.Post("/query", "(?s <http://t/p1> ?o)", &response).ok());

  ASSERT_TRUE(client.Get("/metrics?format=prometheus", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers["content-type"].find("text/plain"),
            std::string::npos);
  EXPECT_NE(response.body.find("# TYPE server_requests counter"),
            std::string::npos);
  EXPECT_NE(response.body.find("# TYPE server_inflight gauge"),
            std::string::npos);
  EXPECT_NE(response.body.find("# TYPE server_request_ns histogram"),
            std::string::npos);
  EXPECT_NE(response.body.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(response.body.find("server_request_ns_sum"), std::string::npos);
  EXPECT_NE(response.body.find("server_request_ns_count"), std::string::npos);

  // The default stays JSON; an unknown format is a 400.
  ASSERT_TRUE(client.Get("/metrics", &response).ok());
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers["content-type"].find("application/json"),
            std::string::npos);
  ASSERT_TRUE(client.Get("/metrics?format=xml", &response).ok());
  EXPECT_EQ(response.status, 400);
  server->Stop();
}

}  // namespace
}  // namespace server
}  // namespace wdsparql
