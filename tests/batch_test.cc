#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rdf/generator.h"
#include "support/testlib.h"
#include "util/rng.h"
#include "wdsparql/wdsparql.h"

/// \file
/// Tests of the transactional execution surface: `WriteBatch` /
/// `Database::Apply` (net-effect semantics, single-publish commits,
/// no-op batches, WAL group atomicity under kill-and-reopen), user-held
/// `Snapshot`s (repeatable reads across interleaved batches), and
/// `ExecOptions` (row limits, deadlines, cancellation — observed
/// mid-enumeration, including from another thread under TSan).

namespace wdsparql {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wdsparql_batch_" + name;
}

/// Starts every test from a clean slate: stale snapshot/WAL files from
/// a previous run must not leak state across runs.
std::string FreshPath(const std::string& name) {
  std::string path = TempPath(name);
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

Database MustOpen(const std::string& path, const OpenOptions& options = {}) {
  Result<Database> opened = Database::Open(path, options);
  if (!opened.ok()) {
    ADD_FAILURE() << "MustOpen(" << path << "): " << opened.status().ToString();
  }
  WDSPARQL_CHECK(opened.ok());
  return std::move(opened).value();
}

/// A deterministic mutation stream over the p0..p2 vocabulary: triples
/// the query corpus below can see.
std::vector<Triple> WorkloadTriples(TermPool* pool, int count, uint64_t seed) {
  Rng rng(seed);
  RdfGraph staged(pool);
  testlib::SmallWorkloadGraph(&rng, std::max(6, count / 6), count, 3, &staged);
  return staged.triples().triples();
}

const char* const kQueries[] = {
    "(?x p0 ?y)",
    "((?x p0 ?y) AND (?y p1 ?z)) OPT (?z p2 ?w)",
    "(?x p1 ?y) OPT ((?y p2 ?z) OPT (?z p0 ?w))",
};

std::vector<std::string> SortedAnswers(const Database& db, const std::string& pattern,
                                       Backend backend) {
  SessionOptions options;
  options.backend = backend;
  Statement stmt = db.OpenSession(options).Prepare(pattern);
  EXPECT_TRUE(stmt.ok()) << stmt.diagnostics().ToString();
  std::vector<std::string> out;
  for (const Mapping& mu : stmt.Solutions()) out.push_back(mu.ToString(db.pool()));
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameAnswers(const Database& a, const Database& b) {
  for (const char* query : kQueries) {
    EXPECT_EQ(SortedAnswers(a, query, Backend::kIndexed),
              SortedAnswers(b, query, Backend::kIndexed))
        << "indexed backend diverged on " << query;
    EXPECT_EQ(SortedAnswers(a, query, Backend::kNaiveHash),
              SortedAnswers(b, query, Backend::kNaiveHash))
        << "naive backend diverged on " << query;
    EXPECT_EQ(SortedAnswers(a, query, Backend::kIndexed),
              SortedAnswers(b, query, Backend::kNaiveHash))
        << "backends diverged on " << query;
  }
}

/// Sorted spellings of one snapshot-bound (or live) execution.
std::vector<std::string> DrainSorted(Cursor cursor, const TermPool& pool) {
  std::vector<std::string> out;
  while (cursor.Next()) out.push_back(cursor.Row().ToString(pool));
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------
// WriteBatch semantics
// ---------------------------------------------------------------------

TEST(WriteBatchTest, BatchVsLoopDifferentialBothBackends) {
  // The same interleaved add/remove stream applied as one batch and as
  // a per-triple loop must produce byte-identical answers on both
  // backends (the loop is the old surface; the batch the new one).
  TermPool pool_batch;
  TermPool pool_loop;
  Database batched(&pool_batch);
  Database looped(&pool_loop);

  // The stream is generated over the loop database's pool; the batch
  // carries spellings, so the batched database interns independently —
  // exactly like a batch shipped from another process would.
  std::vector<Triple> base = WorkloadTriples(&pool_loop, 300, 7);
  // Mutation stream: every base triple added; every third removed again
  // later in the same stream (so the batch nets it out).
  WriteBatch batch;
  for (const Triple& t : base) {
    ASSERT_TRUE(batch.Add(pool_loop, t));
    looped.AddTriple(t);
  }
  for (std::size_t i = 0; i < base.size(); i += 3) {
    ASSERT_TRUE(batch.Remove(pool_loop, base[i]));
  }
  ApplyResult result;
  ASSERT_TRUE(batched.Apply(std::move(batch), &result).ok());
  EXPECT_TRUE(batch.empty()) << "Apply consumes the batch";

  for (std::size_t i = 0; i < base.size(); i += 3) {
    looped.RemoveTriple(base[i]);
  }
  EXPECT_EQ(batched.size(), looped.size());
  EXPECT_EQ(result.added, batched.size());
  ExpectSameAnswers(batched, looped);
}

TEST(WriteBatchTest, SinglePublishPerBatch) {
  Database db;
  std::vector<Triple> triples = WorkloadTriples(&db.pool(), 200, 11);
  WriteBatch batch;
  for (const Triple& t : triples) batch.Add(db.pool(), t);
  uint64_t before = db.generation();
  ASSERT_TRUE(db.Apply(std::move(batch)).ok());
  // One merged delta build, ONE view publish — not one per triple.
  // (200 < merge threshold, so no fold publish either.)
  EXPECT_EQ(db.generation(), before + 1);
  EXPECT_EQ(db.size(), triples.size());
}

TEST(WriteBatchTest, EmptyBatchIsNoOp) {
  Database db;
  db.AddTriple("a", "p0", "b");
  uint64_t before = db.generation();
  ApplyResult result;
  ASSERT_TRUE(db.Apply(WriteBatch(), &result).ok());
  EXPECT_TRUE(result.no_op());
  EXPECT_EQ(db.generation(), before) << "no publish for an empty batch";
  EXPECT_EQ(db.size(), 1u);
}

TEST(WriteBatchTest, CancellingBatchIsNoOp) {
  Database db;
  db.AddTriple("a", "p0", "b");
  uint64_t before = db.generation();

  ApplyResult result;
  WriteBatch batch;
  batch.Add("x", "p1", "y");     // New triple...
  batch.Remove("x", "p1", "y");  // ...cancelled within the batch.
  batch.Remove("a", "p0", "b");  // Present triple removed...
  batch.Add("a", "p0", "b");     // ...and restored: matches current state.
  batch.Add("a", "p0", "b");     // Duplicate of current state outright.
  batch.Remove("never", "was", "here");  // Absent: nothing to do.
  ASSERT_TRUE(db.Apply(std::move(batch), &result).ok());

  EXPECT_TRUE(result.no_op());
  EXPECT_EQ(db.generation(), before)
      << "a fully-cancelling batch must not publish or bump the generation";
  EXPECT_EQ(db.size(), 1u);
  EXPECT_TRUE(db.Contains(Triple(db.pool().InternIri("a"), db.pool().InternIri("p0"),
                                 db.pool().InternIri("b"))));
}

TEST(WriteBatchTest, NoOpBatchWritesNoWalRecord) {
  std::string path = FreshPath("noop.snap");
  OpenOptions options;
  options.durability = Durability::kWal;
  options.create_if_missing = true;
  Database db = MustOpen(path, options);
  db.AddTriple("a", "p0", "b");
  std::size_t wal_bytes = ReadFileBytes(path + ".wal").size();

  WriteBatch batch;
  batch.Add("a", "p0", "b");             // Already present.
  batch.Add("x", "p1", "y");
  batch.Remove("x", "p1", "y");          // Cancels in-batch.
  ASSERT_TRUE(db.Apply(std::move(batch)).ok());
  EXPECT_EQ(ReadFileBytes(path + ".wal").size(), wal_bytes)
      << "a no-op batch must not append a WAL record";
}

TEST(WriteBatchTest, NetEffectLogsOneGroupAndReplays) {
  std::string path = FreshPath("group.snap");
  OpenOptions options;
  options.durability = Durability::kWal;
  options.create_if_missing = true;
  uint64_t mirror_size;
  {
    Database db = MustOpen(path, options);
    WriteBatch batch;
    ASSERT_TRUE(batch.LoadNTriples("a p0 b .\n"
                                   "b p1 c .\n"
                                   "c p2 d .\n")
                    .ok());
    batch.Remove("b", "p1", "c");  // Nets out within the batch.
    ASSERT_TRUE(db.Apply(std::move(batch)).ok());
    // A second, removing batch against the committed state.
    WriteBatch second;
    second.Remove("a", "p0", "b");
    second.Add("d", "p0", "e");
    ASSERT_TRUE(db.Apply(std::move(second)).ok());
    mirror_size = db.size();
    // No Checkpoint: reopen must reconstruct purely from group replay.
  }
  Database reopened = MustOpen(path, options);
  EXPECT_EQ(reopened.size(), mirror_size);
  TermPool& pool = reopened.pool();
  EXPECT_TRUE(reopened.Contains(Triple(pool.InternIri("c"), pool.InternIri("p2"),
                                       pool.InternIri("d"))));
  EXPECT_TRUE(reopened.Contains(Triple(pool.InternIri("d"), pool.InternIri("p0"),
                                       pool.InternIri("e"))));
  EXPECT_FALSE(reopened.Contains(Triple(pool.InternIri("a"), pool.InternIri("p0"),
                                        pool.InternIri("b"))));
  EXPECT_FALSE(reopened.Contains(Triple(pool.InternIri("b"), pool.InternIri("p1"),
                                        pool.InternIri("c"))));
}

TEST(WriteBatchTest, KillAndReopenReplaysGroupsAllOrNothing) {
  std::string path = FreshPath("atomic.snap");
  OpenOptions options;
  options.durability = Durability::kWal;
  options.create_if_missing = true;

  // Commit two batches, remembering the WAL bytes between them.
  std::string wal_after_first;
  {
    Database db = MustOpen(path, options);
    WriteBatch first;
    for (int i = 0; i < 16; ++i) {
      first.Add("s" + std::to_string(i), "p0", "o" + std::to_string(i));
    }
    ASSERT_TRUE(db.Apply(std::move(first)).ok());
    wal_after_first = ReadFileBytes(path + ".wal");
    WriteBatch second;
    for (int i = 16; i < 32; ++i) {
      second.Add("s" + std::to_string(i), "p0", "o" + std::to_string(i));
    }
    ASSERT_TRUE(db.Apply(std::move(second)).ok());
  }
  std::string full_wal = ReadFileBytes(path + ".wal");
  ASSERT_GT(full_wal.size(), wal_after_first.size());

  // Intact log: both groups replay.
  {
    Database db = MustOpen(path, options);
    EXPECT_EQ(db.size(), 32u);
  }
  // "Kill" inside the second group: chop bytes so the frame is torn.
  // However little is missing, the WHOLE group must vanish — never a
  // prefix of it.
  for (std::size_t cut : {std::size_t(1), (full_wal.size() - wal_after_first.size()) / 2}) {
    WriteFileBytes(path + ".wal", full_wal.substr(0, full_wal.size() - cut));
    Database db = MustOpen(path, options);
    EXPECT_EQ(db.size(), 16u) << "torn group (cut " << cut
                              << " bytes) must be discarded in full";
    TermPool& pool = db.pool();
    for (int i = 0; i < 16; ++i) {
      EXPECT_TRUE(db.Contains(Triple(pool.InternIri("s" + std::to_string(i)),
                                     pool.InternIri("p0"),
                                     pool.InternIri("o" + std::to_string(i)))));
    }
    // The open truncated the torn tail; restore the full log for the
    // next round.
  }
}

TEST(WriteBatchTest, OldWalHeaderUpgradedBeforeGroupFrames) {
  // A version-1 log must replay under this reader — and be re-stamped
  // to the current version before any group frame lands in it, so an
  // old reader meeting the new frames fails loudly (kCorruption on the
  // version check) instead of silently truncating them as a torn tail.
  std::string path = FreshPath("upgrade.snap");
  OpenOptions options;
  options.durability = Durability::kWal;
  options.create_if_missing = true;
  {
    Database db = MustOpen(path, options);
    db.AddTriple("a", "p0", "b");  // One single-record frame.
  }
  // Backdate the header to version 1 (u32 at offset 8, little-endian).
  std::string wal = ReadFileBytes(path + ".wal");
  ASSERT_GE(wal.size(), 16u);
  wal[8] = 1;
  wal[9] = wal[10] = wal[11] = 0;
  WriteFileBytes(path + ".wal", wal);
  {
    Database db = MustOpen(path, options);
    EXPECT_EQ(db.size(), 1u) << "the version-1 record must replay";
    WriteBatch batch;
    batch.Add("c", "p0", "d");
    batch.Add("e", "p0", "f");
    ASSERT_TRUE(db.Apply(std::move(batch)).ok());  // A group frame.
  }
  EXPECT_EQ(static_cast<unsigned char>(ReadFileBytes(path + ".wal")[8]),
            storage_format::kWalVersion)
      << "the on-disk header must carry the current version once group "
         "frames may follow";
  Database reopened = MustOpen(path, options);
  EXPECT_EQ(reopened.size(), 3u);
}

TEST(WriteBatchTest, LoadNTriplesIsAtomicOnParseErrors) {
  WriteBatch batch;
  batch.Add("keep", "p0", "me");
  Status status = batch.LoadNTriples("a p0 b .\nthis is ?not a triple !!\n");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(batch.size(), 1u) << "a failed load must leave the batch untouched";

  Database db;
  EXPECT_FALSE(db.LoadNTriples("a p0 b .\n<unclosed iri p q .").ok());
  EXPECT_EQ(db.size(), 0u) << "a failed load must leave the database untouched";
  EXPECT_EQ(db.generation(), Database().generation());
}

TEST(WriteBatchTest, StreamedFileLoadMatchesAtomicLoad) {
  std::string nt_path = TempPath("stream.nt");
  {
    std::ofstream out(nt_path, std::ios::trunc);
    for (int i = 0; i < 100; ++i) {
      out << "s" << i % 17 << " p" << i % 3 << " o" << i % 11 << " .\n";
    }
  }
  Database atomic_db;
  ASSERT_TRUE(atomic_db.LoadNTriplesFile(nt_path).ok());
  Database streamed_db;
  ASSERT_TRUE(streamed_db.LoadNTriplesFile(nt_path, /*batch_size=*/7).ok());
  EXPECT_EQ(atomic_db.size(), streamed_db.size());
  ExpectSameAnswers(atomic_db, streamed_db);
  std::remove(nt_path.c_str());
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

TEST(SnapshotTest, RepeatableReadAcrossInterleavedBatches) {
  Database db;
  ASSERT_TRUE(db.LoadNTriples("a p0 b .\nb p1 c .\nb p0 c .\n").ok());
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y) OPT (?y p1 ?z)");
  ASSERT_TRUE(stmt.ok());

  Snapshot snap = db.GetSnapshot();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.generation(), db.generation());
  EXPECT_EQ(snap.size(), 3u);
  std::vector<std::string> before = DrainSorted(stmt.Execute(snap), db.pool());

  // Interleave two committed batches: one growing, one shrinking.
  WriteBatch grow;
  grow.Add("c", "p0", "d");
  grow.Add("d", "p1", "e");
  ASSERT_TRUE(db.Apply(std::move(grow)).ok());
  std::vector<std::string> mid = DrainSorted(stmt.Execute(snap), db.pool());
  WriteBatch shrink;
  shrink.Remove("a", "p0", "b");
  ASSERT_TRUE(db.Apply(std::move(shrink)).ok());
  std::vector<std::string> after = DrainSorted(stmt.Execute(snap), db.pool());

  // Snapshot-bound executions are identical before, between and after
  // the commits; a live execution sees the new state.
  EXPECT_EQ(before, mid);
  EXPECT_EQ(before, after);
  EXPECT_NE(before, DrainSorted(stmt.Execute(), db.pool()));
  EXPECT_EQ(snap.size(), 3u) << "the pinned state never changes";
  EXPECT_LT(snap.generation(), db.generation());

  // The snapshot survives a compaction too (pinned runs stay alive).
  db.Compact();
  EXPECT_EQ(before, DrainSorted(stmt.Execute(snap), db.pool()));
}

TEST(SnapshotTest, ManyCursorsOneSnapshot) {
  Database db;
  ASSERT_TRUE(db.LoadNTriples("a p0 b .\nb p0 c .\nc p0 d .\n").ok());
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y)");
  ASSERT_TRUE(stmt.ok());
  Snapshot snap = db.GetSnapshot();

  // Open several cursors against the snapshot, advance them unevenly,
  // and mutate in between: every cursor still enumerates the pinned
  // state (that is the repeatable-read point — one consistent state
  // across MANY cursors, not one).
  Cursor c1 = stmt.Execute(snap);
  ASSERT_TRUE(c1.Next());
  WriteBatch batch;
  batch.Add("z", "p0", "zz");
  ASSERT_TRUE(db.Apply(std::move(batch)).ok());
  Cursor c2 = stmt.Execute(snap);
  std::vector<std::string> rows2 = DrainSorted(std::move(c2), db.pool());
  EXPECT_EQ(rows2.size(), 3u);
  uint64_t c1_rows = 1;
  while (c1.Next()) ++c1_rows;
  EXPECT_EQ(c1_rows, 3u);
  EXPECT_EQ(c1.generation(), snap.generation());
}

TEST(SnapshotTest, NaiveBackendReadsPinnedState) {
  // The naive oracle accepts a snapshot by materialising a private copy
  // of the pinned view's content at Open: it must see exactly the
  // snapshot state — not the live graph — however the writer churns
  // after the pin (this is what lets differential tests compare both
  // backends against one frozen state under a live writer).
  Database db;
  ASSERT_TRUE(db.LoadNTriples("a p0 b .\nb p0 c .\n").ok());
  SessionOptions options;
  options.backend = Backend::kNaiveHash;
  Statement stmt = db.OpenSession(options).Prepare("(?x p0 ?y)");
  ASSERT_TRUE(stmt.ok());
  Snapshot snap = db.GetSnapshot();
  std::vector<std::string> before = DrainSorted(stmt.Execute(snap), db.pool());
  EXPECT_EQ(before.size(), 2u);

  WriteBatch batch;
  batch.Add("z", "p0", "zz");
  batch.Remove("a", "p0", "b");
  ASSERT_TRUE(db.Apply(std::move(batch)).ok());

  // Snapshot-bound run still sees the pinned state; a live run sees the
  // mutated one. Mutating mid-enumeration must not invalidate the
  // snapshot-bound cursor (it reads its own copy, not the live graph).
  EXPECT_EQ(before, DrainSorted(stmt.Execute(snap), db.pool()));
  Cursor mid = stmt.Execute(snap);
  ASSERT_TRUE(mid.Next());
  WriteBatch more;
  more.Add("zz", "p0", "zzz");
  ASSERT_TRUE(db.Apply(std::move(more)).ok());
  uint64_t rows = 1;
  while (mid.Next()) ++rows;
  EXPECT_EQ(mid.state(), Cursor::State::kExhausted);
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(DrainSorted(stmt.Execute(), db.pool()).size(), 3u);
}

TEST(SnapshotTest, InvalidAndForeignSnapshotsFailLoudly) {
  Database db;
  ASSERT_TRUE(db.LoadNTriples("a p0 b .\n").ok());
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y)");
  ASSERT_TRUE(stmt.ok());

  Cursor invalid = stmt.Execute(Snapshot());
  EXPECT_EQ(invalid.state(), Cursor::State::kFailed);
  EXPECT_FALSE(invalid.Next());

  Database other;
  ASSERT_TRUE(other.LoadNTriples("a p0 b .\n").ok());
  Cursor foreign = stmt.Execute(other.GetSnapshot());
  EXPECT_EQ(foreign.state(), Cursor::State::kFailed);
  EXPECT_FALSE(foreign.Next());
  EXPECT_NE(foreign.diagnostics().message.find("different database"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// ExecOptions
// ---------------------------------------------------------------------

TEST(ExecOptionsTest, RowLimitDeliversExactPrefixThenParks) {
  Database db;
  for (int i = 0; i < 50; ++i) {
    db.AddTriple("s" + std::to_string(i), "p0", "o");
  }
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y)");
  ASSERT_TRUE(stmt.ok());

  ExecOptions options;
  options.row_limit = 7;
  Cursor cursor = stmt.Execute(options);
  uint64_t delivered = 0;
  while (cursor.Next()) ++delivered;
  EXPECT_EQ(delivered, 7u);
  EXPECT_EQ(cursor.state(), Cursor::State::kLimited);
  EXPECT_TRUE(cursor.diagnostics().ok()) << "a row limit is not an error";
  EXPECT_FALSE(cursor.Next()) << "parked cursors stay parked";

  // A limit wider than the answer set exhausts normally.
  ExecOptions wide;
  wide.row_limit = 500;
  Cursor all = stmt.Execute(wide);
  delivered = 0;
  while (all.Next()) ++delivered;
  EXPECT_EQ(delivered, 50u);
  EXPECT_EQ(all.state(), Cursor::State::kExhausted);
}

TEST(ExecOptionsTest, ExpiredDeadlineStopsMidEnumeration) {
  Database db;
  for (int i = 0; i < 200; ++i) {
    db.AddTriple("s" + std::to_string(i), "p0", "o" + std::to_string(i % 5));
  }
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y) OPT (?y p0 ?z)");
  ASSERT_TRUE(stmt.ok());

  ExecOptions options;
  options.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  options.check_interval = 1;  // Probe at every step: deterministic stop.
  Cursor cursor = stmt.Execute(options);
  EXPECT_FALSE(cursor.Next());
  EXPECT_EQ(cursor.state(), Cursor::State::kCancelled);
  EXPECT_EQ(cursor.diagnostics().code, QueryDiagnostics::Code::kDeadlineExceeded);
}

TEST(ExecOptionsTest, CancelTokenStopsBetweenRows) {
  Database db;
  for (int i = 0; i < 100; ++i) {
    db.AddTriple("s" + std::to_string(i), "p0", "o");
  }
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y)");
  ASSERT_TRUE(stmt.ok());

  ExecOptions options;
  options.cancel = MakeCancelToken();
  options.check_interval = 1;
  Cursor cursor = stmt.Execute(options);
  ASSERT_TRUE(cursor.Next()) << "unfired token: rows flow";
  options.cancel->store(true);
  EXPECT_FALSE(cursor.Next());
  EXPECT_EQ(cursor.state(), Cursor::State::kCancelled);
  EXPECT_EQ(cursor.diagnostics().code, QueryDiagnostics::Code::kCancelled);
  EXPECT_EQ(cursor.rows(), 1u);
}

TEST(ExecOptionsTest, CancelTokenFiredFromAnotherThread) {
  // The cross-thread contract (and the TSan subject): a token flipped
  // by another thread stops the enumeration at its next check. The
  // token fires while the consumer drains, so the cursor ends either
  // cancelled (token seen mid-run) or exhausted (small tail lost the
  // race) — both are valid; what must never happen is a crash, a race
  // report, or rows after a false Next.
  Database db;
  for (int i = 0; i < 2000; ++i) {
    db.AddTriple("s" + std::to_string(i), "p0", "o" + std::to_string(i % 7));
  }
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y) OPT (?y p0 ?z)");
  ASSERT_TRUE(stmt.ok());

  ExecOptions options;
  options.cancel = MakeCancelToken();
  options.check_interval = 1;
  Cursor cursor = stmt.Execute(options);
  ASSERT_TRUE(cursor.Next());

  std::thread canceller([token = options.cancel]() { token->store(true); });
  uint64_t rows = 1;
  while (cursor.Next()) ++rows;
  canceller.join();
  EXPECT_LE(rows, 2000u);
  EXPECT_TRUE(cursor.state() == Cursor::State::kCancelled ||
              cursor.state() == Cursor::State::kExhausted)
      << CursorStateToString(cursor.state());
  if (cursor.state() == Cursor::State::kCancelled) {
    EXPECT_EQ(cursor.diagnostics().code, QueryDiagnostics::Code::kCancelled);
  }
  EXPECT_FALSE(cursor.Next());
}

TEST(ExecOptionsTest, BoundsComposeWithSnapshotsAndProjection) {
  Database db;
  ASSERT_TRUE(db.LoadNTriples("a p0 b .\nb p0 c .\nc p0 d .\nd p0 e .\n").ok());
  Statement stmt = db.OpenSession().Prepare("(?x p0 ?y)");
  ASSERT_TRUE(stmt.ok());
  Snapshot snap = db.GetSnapshot();
  WriteBatch batch;
  batch.Add("x", "p0", "y");
  ASSERT_TRUE(db.Apply(std::move(batch)).ok());

  ExecOptions options;
  options.row_limit = 2;
  Cursor cursor = stmt.Execute({"?x"}, snap, options);
  uint64_t rows = 0;
  while (cursor.Next()) {
    EXPECT_EQ(cursor.width(), 1u);
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(cursor.state(), Cursor::State::kLimited);
  EXPECT_EQ(cursor.generation(), snap.generation());
}

}  // namespace
}  // namespace wdsparql
