#include <gtest/gtest.h>

#include "ptree/forest.h"
#include "sparql/parser.h"
#include "wd/branch_width.h"
#include "wd/local_tractability.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class LocalTractabilityTest : public ::testing::Test {
 protected:
  PatternForest Forest(const char* text) {
    auto pattern = ParsePattern(text, &pool_);
    EXPECT_TRUE(pattern.ok());
    auto forest = BuildPatternForest(pattern.value(), pool_);
    EXPECT_TRUE(forest.ok());
    return std::move(forest).value();
  }

  TermPool pool_;
};

TEST_F(LocalTractabilityTest, SingleNodeForestHasWidthOne) {
  EXPECT_EQ(LocalWidth(Forest("(?x p ?y) AND (?y q ?z)")), 1);
}

TEST_F(LocalTractabilityTest, SimpleOptHasWidthOne) {
  EXPECT_EQ(LocalWidth(Forest("(?x p ?y) OPT (?y q ?z)")), 1);
}

TEST_F(LocalTractabilityTest, FkFamilyIsNotLocallyTractable) {
  // The paper (after Theorem 1): due to node n12 of T1, C = {P_k} is not
  // locally tractable — ctw(pat(n12), {?y}) = k-1 — although dw(F_k) = 1.
  for (int k = 2; k <= 5; ++k) {
    PatternForest forest = MakeFkForest(&pool_, k);
    EXPECT_EQ(LocalWidth(forest), std::max(k - 1, 1)) << "k=" << k;
  }
}

TEST_F(LocalTractabilityTest, FkLocalWidthDetailPinpointsN12) {
  PatternForest forest = MakeFkForest(&pool_, 4);
  auto details = LocalWidths(forest);
  int max_width = 0;
  int argmax_tree = -1, argmax_node = -1;
  for (const auto& detail : details) {
    if (detail.core_treewidth > max_width) {
      max_width = detail.core_treewidth;
      argmax_tree = detail.tree_index;
      argmax_node = detail.node;
    }
  }
  EXPECT_EQ(max_width, 3);
  EXPECT_EQ(argmax_tree, 0);  // T1.
  EXPECT_EQ(argmax_node, 2);  // n12 (root=0, n11=1, n12=2).
}

TEST_F(LocalTractabilityTest, BranchFamilyIsNotLocallyTractable) {
  // Section 3.2: bw(T'_k) = 1 but ctw(pat(n_k), {?y}) = k-1.
  for (int k = 2; k <= 5; ++k) {
    PatternForest forest;
    forest.trees.push_back(MakeBranchFamilyTree(&pool_, k));
    EXPECT_EQ(LocalWidth(forest), std::max(k - 1, 1)) << "k=" << k;
    EXPECT_EQ(BranchTreewidth(forest.trees[0]), 1) << "k=" << k;
  }
}

TEST_F(LocalTractabilityTest, LocalImpliesBoundedBranchWidthOnChains) {
  // For OPT-chains with tree-shaped nodes, both measures stay at 1.
  PatternForest forest =
      Forest("(?x p ?y) OPT ((?y q ?z) OPT ((?z q ?w) OPT (?w q ?v)))");
  EXPECT_EQ(LocalWidth(forest), 1);
  EXPECT_EQ(BranchTreewidth(forest.trees[0]), 1);
}

TEST_F(LocalTractabilityTest, LocalWidthBoundsBranchWidthObservation) {
  // Local tractability implies bounded dw (the paper's inclusion); here:
  // branch width never exceeds... is witnessed on the clique family where
  // both equal k-1.
  for (int k = 2; k <= 4; ++k) {
    PatternForest forest;
    forest.trees.push_back(MakeCliqueBranchTree(&pool_, k));
    EXPECT_EQ(LocalWidth(forest), BranchTreewidth(forest.trees[0]));
  }
}

}  // namespace
}  // namespace wdsparql
