#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "rdf/generator.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/triple_set.h"

namespace wdsparql {
namespace {

TEST(TermPoolTest, InternIsIdempotent) {
  TermPool pool;
  TermId a = pool.InternIri("http://example.org/a");
  TermId b = pool.InternIri("http://example.org/a");
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.NumIris(), 1u);
}

TEST(TermPoolTest, VariablesAndIrisAreDisjoint) {
  TermPool pool;
  TermId iri = pool.InternIri("x");
  TermId var = pool.InternVariable("x");
  EXPECT_NE(iri, var);
  EXPECT_TRUE(IsIri(iri));
  EXPECT_TRUE(IsVariable(var));
  EXPECT_FALSE(IsVariable(iri));
  EXPECT_FALSE(IsIri(var));
}

TEST(TermPoolTest, SpellingRoundTrip) {
  TermPool pool;
  TermId var = pool.InternVariable("abc");
  EXPECT_EQ(pool.Spelling(var), "abc");
  EXPECT_EQ(pool.ToDisplayString(var), "?abc");
  TermId iri = pool.InternIri("p");
  EXPECT_EQ(pool.ToDisplayString(iri), "p");
}

TEST(TermPoolTest, FreshVariablesAreDistinct) {
  TermPool pool;
  TermId x = pool.InternVariable("z");
  TermId f1 = pool.FreshVariable("z");
  TermId f2 = pool.FreshVariable("z");
  EXPECT_NE(f1, x);
  EXPECT_NE(f1, f2);
  // A fresh variable's name is re-internable and maps to the same id.
  EXPECT_EQ(pool.InternVariable(pool.Spelling(f1)), f1);
}

TEST(TripleTest, GroundnessAndVariables) {
  TermPool pool;
  TermId x = pool.InternVariable("x");
  TermId p = pool.InternIri("p");
  TermId a = pool.InternIri("a");
  Triple ground(a, p, a);
  EXPECT_TRUE(ground.IsGround());
  EXPECT_TRUE(ground.Variables().empty());

  Triple pattern(x, p, x);
  EXPECT_FALSE(pattern.IsGround());
  EXPECT_EQ(pattern.Variables(), (std::vector<TermId>{x}));  // Deduplicated.
}

TEST(TripleTest, PositionAccess) {
  Triple t(1, 2, 3);
  EXPECT_EQ(t[0], 1u);
  EXPECT_EQ(t[1], 2u);
  EXPECT_EQ(t[2], 3u);
  t.Set(1, 9);
  EXPECT_EQ(t.predicate, 9u);
}

TEST(TripleSetTest, InsertDeduplicates) {
  TripleSet s;
  EXPECT_TRUE(s.Insert(Triple(1, 2, 3)));
  EXPECT_FALSE(s.Insert(Triple(1, 2, 3)));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(Triple(1, 2, 3)));
  EXPECT_FALSE(s.Contains(Triple(3, 2, 1)));
}

TEST(TripleSetTest, PositionIndex) {
  TripleSet s;
  s.Insert(Triple(1, 2, 3));
  s.Insert(Triple(1, 5, 6));
  s.Insert(Triple(7, 2, 3));
  EXPECT_EQ(s.TriplesWithTermAt(0, 1).size(), 2u);
  EXPECT_EQ(s.TriplesWithTermAt(1, 2).size(), 2u);
  EXPECT_EQ(s.TriplesWithTermAt(2, 6).size(), 1u);
  EXPECT_TRUE(s.TriplesWithTermAt(0, 99).empty());
}

TEST(TripleSetTest, VariablesAndIris) {
  TermPool pool;
  TermId x = pool.InternVariable("x");
  TermId y = pool.InternVariable("y");
  TermId p = pool.InternIri("p");
  TermId a = pool.InternIri("a");
  TripleSet s;
  s.Insert(Triple(x, p, y));
  s.Insert(Triple(a, p, x));
  auto vars = s.Variables();
  auto iris = s.Iris();
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_EQ(iris.size(), 2u);
  EXPECT_FALSE(s.IsGround());
}

TEST(TripleSetTest, SetEquality) {
  TripleSet a, b;
  a.Insert(Triple(1, 2, 3));
  a.Insert(Triple(4, 5, 6));
  b.Insert(Triple(4, 5, 6));
  b.Insert(Triple(1, 2, 3));
  EXPECT_TRUE(a == b);  // Order-insensitive.
  b.Insert(Triple(7, 8, 9));
  EXPECT_FALSE(a == b);
}

TEST(TripleSetTest, InsertAllKeepsIndexesConsistent) {
  TripleSet a, b;
  a.Insert(Triple(1, 2, 3));
  a.Insert(Triple(1, 5, 6));
  b.Insert(Triple(1, 2, 3));  // Overlaps with a.
  b.Insert(Triple(7, 2, 3));
  a.InsertAll(b);
  EXPECT_EQ(a.size(), 3u);
  // Per-position indexes must agree with the dense vector.
  EXPECT_EQ(a.TriplesWithTermAt(0, 1).size(), 2u);
  EXPECT_EQ(a.TriplesWithTermAt(1, 2).size(), 2u);
  for (int pos = 0; pos < 3; ++pos) {
    for (const Triple& t : a.triples()) {
      const std::vector<uint32_t>& bucket = a.TriplesWithTermAt(pos, t[pos]);
      bool found = false;
      for (uint32_t idx : bucket) {
        ASSERT_LT(idx, a.size());
        if (a.triples()[idx] == t) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(TripleSetTest, SelfInsertAllIsANoOp) {
  TripleSet a;
  a.Insert(Triple(1, 2, 3));
  a.Insert(Triple(4, 5, 6));
  a.InsertAll(a);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.TriplesWithTermAt(0, 1).size(), 1u);
  EXPECT_EQ(a.TriplesWithTermAt(0, 4).size(), 1u);
}

TEST(TripleSetTest, ReserveDoesNotDisturbContents) {
  TripleSet a;
  a.Insert(Triple(1, 2, 3));
  a.Reserve(1000);
  a.Insert(Triple(4, 5, 6));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.Contains(Triple(1, 2, 3)));
  EXPECT_TRUE(a.Contains(Triple(4, 5, 6)));
  EXPECT_EQ(a.TriplesWithTermAt(0, 4).size(), 1u);
}

TEST(RdfGraphTest, StringInsertionInterns) {
  TermPool pool;
  RdfGraph g(&pool);
  EXPECT_TRUE(g.Insert("alice", "knows", "bob"));
  EXPECT_FALSE(g.Insert("alice", "knows", "bob"));
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.Domain().size(), 3u);
}

TEST(NTriplesTest, ParsesBasicLines) {
  TermPool pool;
  RdfGraph g(&pool);
  Status s = ParseNTriples("# comment\nalice knows bob .\n<http://x> p <http://y>\n\n",
                           &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.Contains(Triple(pool.InternIri("alice"), pool.InternIri("knows"),
                                pool.InternIri("bob"))));
  EXPECT_TRUE(g.Contains(Triple(pool.InternIri("http://x"), pool.InternIri("p"),
                                pool.InternIri("http://y"))));
}

TEST(NTriplesTest, RejectsVariables) {
  TermPool pool;
  RdfGraph g(&pool);
  Status s = ParseNTriples("?x p y .", &g);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NTriplesTest, RejectsShortLines) {
  TermPool pool;
  RdfGraph g(&pool);
  EXPECT_FALSE(ParseNTriples("a b", &g).ok());
  EXPECT_FALSE(ParseNTriples("a b c d", &g).ok());
  EXPECT_FALSE(ParseNTriples("a b <unterminated", &g).ok());
}

TEST(NTriplesTest, RoundTrip) {
  TermPool pool;
  RdfGraph g(&pool);
  g.Insert("s1", "p", "o1");
  g.Insert("s2", "p", "o2");
  std::string text = WriteNTriples(g);

  TermPool pool2;
  RdfGraph g2(&pool2);
  ASSERT_TRUE(ParseNTriples(text, &g2).ok());
  EXPECT_EQ(g2.size(), g.size());
  EXPECT_TRUE(g2.Contains(
      Triple(pool2.InternIri("s1"), pool2.InternIri("p"), pool2.InternIri("o1"))));
}

TEST(NTriplesTest, IriWithSpecialCharactersRoundTrips) {
  TermPool pool;
  RdfGraph g(&pool);
  g.Insert("http://ex.org/a space", "p", "plain");
  std::string text = WriteNTriples(g);
  EXPECT_NE(text.find("<http://ex.org/a space>"), std::string::npos);

  TermPool pool2;
  RdfGraph g2(&pool2);
  ASSERT_TRUE(ParseNTriples(text, &g2).ok()) << text;
  EXPECT_TRUE(g2.Contains(Triple(pool2.InternIri("http://ex.org/a space"),
                                 pool2.InternIri("p"), pool2.InternIri("plain"))));
}

TEST(NTriplesTest, ReadFileRoundTrip) {
  TermPool pool;
  RdfGraph g(&pool);
  g.Insert("s", "p", "o");
  g.Insert("s2", "p", "o2");
  std::string path = ::testing::TempDir() + "/wdsparql_ntriples_test.nt";
  {
    std::ofstream out(path);
    out << WriteNTriples(g);
  }
  TermPool pool2;
  RdfGraph loaded(&pool2);
  ASSERT_TRUE(ReadNTriplesFile(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), 2u);
  std::remove(path.c_str());
}

TEST(NTriplesTest, ReadMissingFileIsNotFound) {
  TermPool pool;
  RdfGraph g(&pool);
  Status s = ReadNTriplesFile("/nonexistent/path/x.nt", &g);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(GeneratorTest, RandomGraphDeterministic) {
  TermPool pool1, pool2;
  RdfGraph g1(&pool1), g2(&pool2);
  RandomGraphOptions options;
  options.seed = 42;
  GenerateRandomGraph(options, &g1);
  GenerateRandomGraph(options, &g2);
  EXPECT_EQ(g1.size(), g2.size());
  EXPECT_EQ(WriteNTriples(g1), WriteNTriples(g2));
}

TEST(GeneratorTest, PathAndCycle) {
  TermPool pool;
  RdfGraph path(&pool), cycle(&pool);
  GeneratePathGraph(5, "next", &path);
  EXPECT_EQ(path.size(), 5u);
  GenerateCycleGraph(4, "next", &cycle);
  EXPECT_EQ(cycle.size(), 4u);
  EXPECT_TRUE(cycle.Contains(
      Triple(pool.InternIri("v3"), pool.InternIri("next"), pool.InternIri("v0"))));
}

TEST(GeneratorTest, EncodeUndirectedGraphIsSymmetric) {
  TermPool pool;
  RdfGraph g(&pool);
  UndirectedGraph h = UndirectedGraph::Path(3);
  EncodeUndirectedGraph(h, "e", "u", &g);
  TermId e = pool.InternIri("e");
  EXPECT_TRUE(g.Contains(Triple(pool.InternIri("u0"), e, pool.InternIri("u1"))));
  EXPECT_TRUE(g.Contains(Triple(pool.InternIri("u1"), e, pool.InternIri("u0"))));
  // 3 node markers + 2 edges x 2 directions.
  EXPECT_EQ(g.size(), 7u);
}

TEST(GeneratorTest, SocialGraphHasOptionalAttributes) {
  TermPool pool;
  RdfGraph g(&pool);
  SocialGraphOptions options;
  options.num_people = 40;
  options.email_probability = 0.5;
  GenerateSocialGraph(options, &g);
  TermId email = pool.InternIri("email");
  int with_email = 0;
  for (const Triple& t : g.triples()) {
    if (t.predicate == email) ++with_email;
  }
  // Some but not all people have the optional attribute: that is the point
  // of the OPT workloads.
  EXPECT_GT(with_email, 0);
  EXPECT_LT(with_email, 40);
}

TEST(GeneratorTest, ErdosRenyiAndPlantedClique) {
  UndirectedGraph g = GenerateErdosRenyi(30, 0.2, 5);
  EXPECT_EQ(g.NumVertices(), 30);
  EXPECT_GT(g.NumEdges(), 0);

  UndirectedGraph planted = GeneratePlantedClique(30, 5, 0.1, 5);
  // The planted clique must exist somewhere; verify by checking total edge
  // count is at least C(5,2).
  EXPECT_GE(planted.NumEdges(), 10);
}

}  // namespace
}  // namespace wdsparql
