#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "wdsparql/wdsparql.h"

/// \file
/// Tests of the observability layer (wdsparql/stats.h,
/// wdsparql/metrics.h): exact `ExecStats` counter differentials on known
/// graphs (both backends), the null disabled path, stats stability under
/// snapshot reads, `ApplyResult` commit facts, and — under the TSan CI
/// job — `MetricsRegistry` merge correctness with many concurrent
/// collecting cursors.

namespace wdsparql {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wdsparql_stats_" + name;
}

/// Starts every test from a clean slate: stale snapshot/WAL files from
/// a previous run must not leak state across runs.
std::string FreshPath(const std::string& name) {
  std::string path = TempPath(name);
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

Database MakeSmallDatabase() {
  Database db;
  db.AddTriple("alice", "knows", "bob");
  db.AddTriple("bob", "knows", "carol");
  db.AddTriple("bob", "email", "bob-at-example");
  return db;
}

ExecOptions Collecting() {
  ExecOptions options;
  options.collect_stats = true;
  return options;
}

// ---------------------------------------------------------------------
// Disabled path
// ---------------------------------------------------------------------

TEST(ExecStatsTest, NullUnlessRequested) {
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());

  Cursor off = stmt.Execute();
  EXPECT_EQ(off.stats(), nullptr);
  while (off.Next()) {
  }
  EXPECT_EQ(off.stats(), nullptr);  // Stays null after exhaustion.

  // The two modes coexist per execution, not per statement.
  Cursor on = stmt.Execute(Collecting());
  EXPECT_NE(on.stats(), nullptr);
}

// ---------------------------------------------------------------------
// Exact differentials on a known graph, both backends
// ---------------------------------------------------------------------

TEST(ExecStatsTest, ExactCountersOnSingleTriplePattern) {
  for (Backend backend : {Backend::kIndexed, Backend::kNaiveHash}) {
    SCOPED_TRACE(BackendToString(backend));
    Database db = MakeSmallDatabase();
    SessionOptions options;
    options.backend = backend;
    Statement stmt = db.OpenSession(options).Prepare("(?x knows ?y)");
    ASSERT_TRUE(stmt.ok());

    Cursor cursor = stmt.Execute(Collecting());
    uint64_t rows = 0;
    while (cursor.Next()) ++rows;
    ASSERT_EQ(cursor.state(), Cursor::State::kExhausted);
    ASSERT_EQ(rows, 2u);

    const ExecStats* stats = cursor.stats();
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->backend, BackendToString(backend));
    EXPECT_EQ(stats->rows_emitted, 2u);
    EXPECT_EQ(stats->rows_emitted, cursor.rows());
    // A single triple pattern: one subtree, two matches, nothing to
    // deduplicate, no children so no maximality certificates.
    EXPECT_EQ(stats->candidates, 2u);
    EXPECT_EQ(stats->dedup_rejected, 0u);
    EXPECT_EQ(stats->non_maximal, 0u);
    EXPECT_EQ(stats->maximality_tests, 0u);
    EXPECT_EQ(stats->filtered_out, 0u);
    ASSERT_EQ(stats->subpatterns.size(), 1u);
    EXPECT_EQ(stats->subpatterns[0].candidates, 2u);
    EXPECT_EQ(stats->subpatterns[0].rows, 2u);
    EXPECT_NE(stats->subpatterns[0].pattern.find("knows"), std::string::npos);

    if (backend == Backend::kIndexed) {
      // The join layer scanned at least one permutation range and
      // resolved the emitted bindings through the dictionary.
      EXPECT_GT(stats->ranges_scanned, 0u);
      EXPECT_GT(stats->dict_encodes, 0u);
      EXPECT_GT(stats->dict_decodes, 0u);
      EXPECT_GE(stats->base_triples_scanned + stats->delta_triples_scanned,
                stats->candidates);
    } else {
      // The naive oracle never touches the permutation store.
      EXPECT_EQ(stats->ranges_scanned, 0u);
      EXPECT_EQ(stats->dict_encodes, 0u);
      EXPECT_EQ(stats->base_triples_scanned, 0u);
    }

    // Renderings: the text tree names the backend and the subpattern;
    // the JSON rendering is one object.
    std::string text = stats->ToText();
    EXPECT_NE(text.find(BackendToString(backend)), std::string::npos);
    EXPECT_NE(text.find("knows"), std::string::npos);
    std::string json = stats->ToJson();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"rows_emitted\":2"), std::string::npos);
  }
}

TEST(ExecStatsTest, OptionalPatternRunsMaximalityCertificates) {
  for (Backend backend : {Backend::kIndexed, Backend::kNaiveHash}) {
    SCOPED_TRACE(BackendToString(backend));
    Database db = MakeSmallDatabase();
    SessionOptions options;
    options.backend = backend;
    Statement stmt =
        db.OpenSession(options).Prepare("(?x knows ?y) OPT (?y email ?e)");
    ASSERT_TRUE(stmt.ok());

    Cursor cursor = stmt.Execute(Collecting());
    uint64_t rows = 0;
    while (cursor.Next()) ++rows;
    // alice-knows-bob extends (bob has email); bob-knows-carol does not.
    ASSERT_EQ(rows, 2u);

    const ExecStats* stats = cursor.stats();
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->rows_emitted, 2u);
    EXPECT_GT(stats->maximality_tests, 0u);
    EXPECT_GT(stats->non_maximal, 0u);

    // Per-subpattern entries sum to the totals they break down.
    uint64_t candidates = 0, dedup = 0, non_maximal = 0, tests = 0, sub_rows = 0;
    for (const ExecStats::Subpattern& sub : stats->subpatterns) {
      candidates += sub.candidates;
      dedup += sub.dedup_rejected;
      non_maximal += sub.non_maximal;
      tests += sub.maximality_tests;
      sub_rows += sub.rows;
    }
    EXPECT_EQ(candidates, stats->candidates);
    EXPECT_EQ(dedup, stats->dedup_rejected);
    EXPECT_EQ(non_maximal, stats->non_maximal);
    EXPECT_EQ(tests, stats->maximality_tests);
    EXPECT_EQ(sub_rows, stats->rows_emitted);
  }
}

TEST(ExecStatsTest, BackendsAgreeOnEnumerationTotals) {
  // The two backends share the enumeration skeleton, so the *logical*
  // counters (candidates, rows, rejections) must match exactly; only the
  // storage counters differ.
  ExecStats collected[2];
  int i = 0;
  for (Backend backend : {Backend::kIndexed, Backend::kNaiveHash}) {
    Database db = MakeSmallDatabase();
    SessionOptions options;
    options.backend = backend;
    Statement stmt =
        db.OpenSession(options).Prepare("(?x knows ?y) OPT (?y email ?e)");
    ASSERT_TRUE(stmt.ok());
    Cursor cursor = stmt.Execute(Collecting());
    while (cursor.Next()) {
    }
    ASSERT_NE(cursor.stats(), nullptr);
    collected[i++] = *cursor.stats();  // Plain value: copyable.
  }
  EXPECT_EQ(collected[0].rows_emitted, collected[1].rows_emitted);
  EXPECT_EQ(collected[0].candidates, collected[1].candidates);
  EXPECT_EQ(collected[0].dedup_rejected, collected[1].dedup_rejected);
  EXPECT_EQ(collected[0].non_maximal, collected[1].non_maximal);
  EXPECT_EQ(collected[0].maximality_tests, collected[1].maximality_tests);
  EXPECT_EQ(collected[0].subpatterns.size(), collected[1].subpatterns.size());
}

TEST(ExecStatsTest, FiltersAndProjectionCounted) {
  Database db = MakeSmallDatabase();
  db.AddTriple("bob", "knows", "bob");  // The self-loop the filter drops.
  Statement stmt =
      db.OpenSession().Prepare("((?x knows ?y)) FILTER (?x != ?y)");
  ASSERT_TRUE(stmt.ok());
  Cursor cursor = stmt.Execute(Collecting());
  uint64_t rows = 0;
  while (cursor.Next()) ++rows;
  EXPECT_EQ(rows, 2u);  // alice->bob, bob->carol survive; bob->bob dropped.
  const ExecStats* stats = cursor.stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->rows_emitted, rows);
  EXPECT_EQ(stats->filtered_out, 1u);

  // Projecting the surviving rows onto ?x collapses nothing here, so
  // add a second alice-edge: {alice, alice, bob} dedups to {alice, bob}.
  db.AddTriple("alice", "knows", "carol");
  Statement stmt2 =
      db.OpenSession().Prepare("((?x knows ?y)) FILTER (?x != ?y)");
  ASSERT_TRUE(stmt2.ok());
  Cursor projected = stmt2.Execute({"?x"}, Collecting());
  uint64_t projected_rows = 0;
  while (projected.Next()) ++projected_rows;
  EXPECT_EQ(projected_rows, 2u);
  ASSERT_NE(projected.stats(), nullptr);
  EXPECT_EQ(projected.stats()->rows_emitted, projected_rows);
  EXPECT_EQ(projected.stats()->projection_dedup_rejected, 1u);
}

// ---------------------------------------------------------------------
// Stability across snapshot reads
// ---------------------------------------------------------------------

TEST(ExecStatsTest, SnapshotBoundExecutionIsUndisturbedByWrites) {
  Database db = MakeSmallDatabase();
  Snapshot snapshot = db.GetSnapshot();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());

  Cursor cursor = stmt.Execute(snapshot, Collecting());
  ASSERT_TRUE(cursor.Next());
  // Mutate mid-enumeration: the snapshot-bound cursor keeps reading its
  // pinned view and its stats describe exactly that execution.
  ASSERT_TRUE(db.AddTriple("dave", "knows", "erin"));
  uint64_t rows = 1;
  while (cursor.Next()) ++rows;
  ASSERT_EQ(cursor.state(), Cursor::State::kExhausted);
  EXPECT_EQ(rows, 2u);  // The snapshot has two knows-edges, not three.
  const ExecStats* stats = cursor.stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->rows_emitted, 2u);
  EXPECT_EQ(stats->candidates, 2u);
}

// ---------------------------------------------------------------------
// Phase timers
// ---------------------------------------------------------------------

TEST(ExecStatsTest, PhaseTimersArePopulated) {
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());
  Cursor cursor = stmt.Execute(Collecting());
  while (cursor.Next()) {
  }
  const ExecStats* stats = cursor.stats();
  ASSERT_NE(stats, nullptr);
  // Parse/check ran on real text, and the cursor pulled rows; steady
  // clocks at nanosecond granularity make zero readings implausible but
  // not impossible — accept zero only for plan (tiny pattern).
  EXPECT_GT(stats->parse_ns + stats->check_ns + stats->plan_ns, 0u);
  EXPECT_GT(stats->enumerate_ns, 0u);
}

// ---------------------------------------------------------------------
// ApplyResult commit facts
// ---------------------------------------------------------------------

TEST(ApplyResultTest, ReportsNetOpsAndPublishes) {
  Database db;
  WriteBatch batch;
  batch.Add("a", "p", "b");
  batch.Add("c", "p", "d");
  batch.Add("a", "p", "b");  // Duplicate inside the batch: nets out.
  ApplyResult result;
  ASSERT_TRUE(db.Apply(std::move(batch), &result).ok());
  EXPECT_EQ(result.added, 2u);
  EXPECT_EQ(result.removed, 0u);
  EXPECT_EQ(result.net_ops(), 2u);
  EXPECT_EQ(result.publishes, 1u);  // One delta build, one publish.
  EXPECT_EQ(result.wal_bytes, 0u);  // No WAL on an in-memory database.
  EXPECT_EQ(result.wal_groups, 0u);

  // A no-op batch reports all-zero facts.
  WriteBatch noop;
  noop.Add("a", "p", "b");
  ApplyResult noop_result;
  ASSERT_TRUE(db.Apply(std::move(noop), &noop_result).ok());
  EXPECT_EQ(noop_result.net_ops(), 0u);
  EXPECT_EQ(noop_result.publishes, 0u);
}

TEST(ApplyResultTest, ReportsWalBytesAndGroups) {
  std::string path = FreshPath("apply_facts.snap");
  OpenOptions options;
  options.durability = Durability::kWal;
  options.create_if_missing = true;
  Result<Database> opened = Database::Open(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Database db = std::move(opened).value();

  WriteBatch batch;
  batch.Add("a", "p", "b");
  batch.Add("c", "p", "d");
  ApplyResult result;
  ASSERT_TRUE(db.Apply(std::move(batch), &result).ok());
  EXPECT_EQ(result.net_ops(), 2u);
  EXPECT_EQ(result.wal_groups, 1u);  // One group frame for the batch.
  EXPECT_GT(result.wal_bytes, 0u);

  // The registry saw the same commit.
  EXPECT_EQ(db.metrics().counter("write.commits").value(), 1u);
  EXPECT_EQ(db.metrics().counter("write.wal_groups").value(), 1u);
  EXPECT_EQ(db.metrics().counter("write.wal_bytes").value(), result.wal_bytes);
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsAndDump) {
  MetricsRegistry registry;
  registry.counter("c").Add(3);
  registry.counter("c").Add(2);
  registry.gauge("g").Set(7);
  registry.gauge("g").Add(-2);
  registry.histogram("h").Observe(0);
  registry.histogram("h").Observe(5);
  registry.histogram("h").Observe(1000);

  EXPECT_EQ(registry.counter("c").value(), 5u);
  EXPECT_EQ(registry.gauge("g").value(), 5);
  EXPECT_EQ(registry.histogram("h").count(), 3u);
  EXPECT_EQ(registry.histogram("h").sum(), 1005u);
  EXPECT_EQ(registry.histogram("h").max(), 1000u);

  std::string text = registry.Dump(MetricsFormat::kText);
  EXPECT_NE(text.find("c counter 5"), std::string::npos);
  EXPECT_NE(text.find("g gauge 5"), std::string::npos);
  EXPECT_NE(text.find("h histogram"), std::string::npos);

  std::string json = registry.Dump(MetricsFormat::kJson);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBuckets) {
  // Bucket i counts samples of i significant bits.
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  Histogram h;
  h.Observe(3);
  EXPECT_EQ(h.bucket(2), 1u);
}

TEST(MetricsRegistryTest, HistogramQuantilesInterpolate) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // Empty: no mass anywhere.
  // 100 zeros: every quantile sits in bucket 0, which holds only 0.
  for (int i = 0; i < 100; ++i) h.Observe(0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);

  Histogram spread;
  // 90 samples in bucket [1,2), 10 in [1024,2048): p50 interpolates
  // inside the low bucket, p99 inside the high one.
  for (int i = 0; i < 90; ++i) spread.Observe(1);
  for (int i = 0; i < 10; ++i) spread.Observe(1500);
  EXPECT_GE(spread.Quantile(0.5), 1.0);
  EXPECT_LE(spread.Quantile(0.5), 2.0);
  double p99 = spread.Quantile(0.99);
  EXPECT_GE(p99, 1024.0);
  EXPECT_LE(p99, 2048.0);
  // Monotone in q.
  EXPECT_LE(spread.Quantile(0.5), spread.Quantile(0.95));
  EXPECT_LE(spread.Quantile(0.95), spread.Quantile(0.99));
}

TEST(MetricsRegistryTest, DumpsCarryQuantiles) {
  MetricsRegistry registry;
  for (int i = 0; i < 100; ++i) registry.histogram("h").Observe(8);

  std::string text = registry.Dump(MetricsFormat::kText);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);

  std::string json = registry.Dump(MetricsFormat::kJson);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("server.requests").Add(5);
  registry.gauge("server.inflight").Set(2);
  registry.histogram("request.ns").Observe(0);
  registry.histogram("request.ns").Observe(5);
  registry.histogram("request.ns").Observe(1000);

  std::string prom = registry.Dump(MetricsFormat::kPrometheus);
  // Dots sanitised to underscores; one # TYPE line per instrument.
  EXPECT_NE(prom.find("# TYPE server_requests counter"), std::string::npos);
  EXPECT_NE(prom.find("server_requests 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE server_inflight gauge"), std::string::npos);
  EXPECT_NE(prom.find("server_inflight 2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE request_ns histogram"), std::string::npos);
  // Cumulative buckets: le="0" holds the zero sample; le="7" (bucket of
  // 5) adds the second; +Inf carries all three, agreeing with _count.
  EXPECT_NE(prom.find("request_ns_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("request_ns_bucket{le=\"7\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("request_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("request_ns_sum 1005"), std::string::npos);
  EXPECT_NE(prom.find("request_ns_count 3"), std::string::npos);

  // Every non-comment line is "name{labels}? value": tokenises to
  // exactly two space-separated fields.
  std::size_t start = 0;
  while (start < prom.size()) {
    std::size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    std::string line = prom.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t spaces = std::count(line.begin(), line.end(), ' ');
    EXPECT_EQ(spaces, 1u) << "malformed exposition line: " << line;
  }
}

TEST(MetricsRegistryTest, DatabaseTracksViewLifecycleAndQueries) {
  Database db = MakeSmallDatabase();
  // Every publish since the registry attached carries a lifetime token;
  // with no reader pins only the latest view is alive.
  EXPECT_EQ(db.metrics().gauge("views.live").value(), 1);
  {
    Snapshot pinned = db.GetSnapshot();
    ASSERT_TRUE(db.AddTriple("dave", "knows", "erin"));
    EXPECT_EQ(db.metrics().gauge("views.live").value(), 2);
  }
  // Dropping the snapshot releases the superseded view (and its token).
  ASSERT_TRUE(db.AddTriple("erin", "knows", "frank"));
  EXPECT_EQ(db.metrics().gauge("views.live").value(), 1);

  // Cursor totals merge at finish — even without collect_stats.
  uint64_t rows_before = db.metrics().counter("query.rows_emitted").value();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());
  uint64_t rows = 0;
  {
    Cursor cursor = stmt.Execute();
    while (cursor.Next()) ++rows;
  }
  EXPECT_EQ(rows, 4u);
  EXPECT_EQ(db.metrics().counter("query.rows_emitted").value(), rows_before + rows);
  EXPECT_GT(db.metrics().counter("query.cursors_opened").value(), 0u);
}

TEST(MetricsRegistryTest, AbandonedCursorStillMergesOnce) {
  Database db = MakeSmallDatabase();
  Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
  ASSERT_TRUE(stmt.ok());
  uint64_t before = db.metrics().counter("query.rows_emitted").value();
  {
    Cursor cursor = stmt.Execute(Collecting());
    ASSERT_TRUE(cursor.Next());
    cursor.Close();  // Merge happens here...
  }                  // ...and the destructor must not double-count.
  EXPECT_EQ(db.metrics().counter("query.rows_emitted").value(), before + 1);
}

TEST(MetricsRegistryTest, MergeIsCorrectUnderConcurrentCursors) {
  // The TSan job runs this file: many threads drive collecting cursors
  // against one database while a writer commits batches. Counter merges
  // happen at cursor finish; the final registry totals must equal the
  // sum of per-cursor rows exactly (no lost updates, no data races).
  Database db = MakeSmallDatabase();

  constexpr int kThreads = 4;
  constexpr int kIterations = 25;
  uint64_t rows_before = db.metrics().counter("query.rows_emitted").value();
  std::atomic<uint64_t> rows_total{0};
  std::atomic<bool> stop{false};

  std::thread writer([&db, &stop]() {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      WriteBatch batch;
      std::string node = "w" + std::to_string(i++);
      batch.Add(node, "p", node);
      EXPECT_TRUE(db.Apply(std::move(batch)).ok());
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&db, &rows_total]() {
      Session session = db.OpenSession();
      Statement stmt = session.Prepare("(?x knows ?y)");
      ASSERT_TRUE(stmt.ok());
      uint64_t mine = 0;
      for (int i = 0; i < kIterations; ++i) {
        Cursor cursor = stmt.Execute(Collecting());
        while (cursor.Next()) ++mine;
        const ExecStats* stats = cursor.stats();
        ASSERT_NE(stats, nullptr);
      }
      rows_total.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (std::thread& reader : readers) reader.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(db.metrics().counter("query.rows_emitted").value(),
            rows_before + rows_total.load());
  EXPECT_GE(db.metrics().counter("query.cursors_opened").value(),
            static_cast<uint64_t>(kThreads * kIterations));
  EXPECT_GT(db.metrics().counter("write.commits").value(), 0u);
}

}  // namespace
}  // namespace wdsparql
