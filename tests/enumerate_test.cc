#include <gtest/gtest.h>

#include <algorithm>

#include "ptree/forest.h"
#include "ptree/semantics.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "support/testlib.h"
#include "wd/enumerate.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class EnumerateTest : public ::testing::Test {
 protected:
  PatternForest Forest(const char* text) {
    auto pattern = ParsePattern(text, &pool_);
    EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
    auto forest = BuildPatternForest(pattern.value(), pool_);
    EXPECT_TRUE(forest.ok()) << forest.status().ToString();
    return std::move(forest).value();
  }

  TermPool pool_;
};

TEST_F(EnumerateTest, StreamsEveryAnswerOnce) {
  PatternForest forest = Forest("(?x p ?y) OPT (?y q ?z)");
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("c", "p", "d");
  g.Insert("b", "q", "e");

  std::vector<Mapping> streamed;
  EnumerateStats stats;
  EnumerateSolutionsNaive(
      forest, g,
      [&](const Mapping& mu) {
        streamed.push_back(mu);
        return true;
      },
      &stats);
  std::sort(streamed.begin(), streamed.end());
  EXPECT_EQ(streamed, EnumerateForestSolutions(forest, g));
  EXPECT_EQ(stats.emitted, streamed.size());
  EXPECT_GE(stats.candidates, stats.emitted);
}

TEST_F(EnumerateTest, EarlyStopRespectsCallback) {
  PatternForest forest = Forest("(?x p ?y)");
  RdfGraph g(&pool_);
  for (int i = 0; i < 8; ++i) g.Insert("s" + std::to_string(i), "p", "o");
  int seen = 0;
  EnumerateSolutionsNaive(forest, g, [&](const Mapping&) { return ++seen < 3; });
  EXPECT_EQ(seen, 3);
}

TEST_F(EnumerateTest, PebbleEnumerationIsSoundAtAnyK) {
  // Even with k far below dw, everything emitted must be a real answer.
  TermPool& pool = pool_;
  PatternForest forest;
  forest.trees.push_back(MakeCliqueBranchTree(&pool, 4));  // dw = 3.
  RdfGraph g(&pool);
  g.Insert("s", "p", "s");
  g.Insert("s", "q", "t");
  g.Insert("t", "r", "u");

  std::vector<Mapping> truth = EnumerateForestSolutions(forest, g);
  for (int k = 1; k <= 3; ++k) {
    for (const Mapping& mu : AllSolutionsPebble(forest, g, k)) {
      EXPECT_TRUE(std::find(truth.begin(), truth.end(), mu) != truth.end())
          << "k=" << k << " emitted non-answer " << mu.ToString(pool);
    }
  }
  // At k = dw the enumeration is exact.
  EXPECT_EQ(AllSolutionsPebble(forest, g, 3), truth);
}

TEST_F(EnumerateTest, FkFamilyEnumerationAtPromiseOne) {
  for (int k = 2; k <= 3; ++k) {
    PatternForest forest = MakeFkForest(&pool_, k);
    RdfGraph g(&pool_);
    g.Insert("a", "p", "b");
    g.Insert("c", "q", "a");
    g.Insert("d", "q", "c");
    g.Insert("b", "r", "e");
    g.Insert("e", "r", "e");
    EXPECT_EQ(AllSolutionsPebble(forest, g, 1), EnumerateForestSolutions(forest, g))
        << "k=" << k;
  }
}

TEST_F(EnumerateTest, CountSolutionsOnSocialShapes) {
  PatternForest forest = Forest("(?p a Person) OPT (?p email ?e)");
  RdfGraph g(&pool_);
  g.Insert("alice", "a", "Person");
  g.Insert("bob", "a", "Person");
  g.Insert("alice", "email", "a@x");
  EXPECT_EQ(CountSolutions(forest, g), 2u);
  g.Insert("alice", "email", "a2@x");
  EXPECT_EQ(CountSolutions(forest, g), 3u);  // Two alice answers + bob.
}

TEST_F(EnumerateTest, EmptyGraphStreamsNothing) {
  PatternForest forest = Forest("(?x p ?y) OPT (?y q ?z)");
  RdfGraph g(&pool_);
  EXPECT_EQ(CountSolutions(forest, g), 0u);
  EXPECT_TRUE(AllSolutionsPebble(forest, g, 1).empty());
}

TEST_F(EnumerateTest, UnionArmsDeduplicate) {
  PatternForest forest = Forest("(?x p ?y) UNION (?x p ?y)");
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  EXPECT_EQ(CountSolutions(forest, g), 1u);
}

TEST_F(EnumerateTest, RandomAgreementSweep) {
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    PatternPtr p = testlib::RandomWellDesignedUnion(&rng, &pool_, 2);
    auto forest = BuildPatternForest(p, pool_);
    ASSERT_TRUE(forest.ok());
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 12, 3, &g);
    std::vector<Mapping> expected = Evaluate(*p, g);
    EXPECT_EQ(CountSolutions(forest.value(), g), expected.size());
    std::vector<Mapping> streamed;
    EnumerateSolutionsNaive(forest.value(), g, [&](const Mapping& mu) {
      streamed.push_back(mu);
      return true;
    });
    std::sort(streamed.begin(), streamed.end());
    EXPECT_EQ(streamed, expected);
  }
}

}  // namespace
}  // namespace wdsparql
