#include <gtest/gtest.h>

#include "hom/homomorphism.h"
#include "rdf/generator.h"
#include "wd/eval.h"
#include "wd/hardness.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class HardnessTest : public ::testing::Test {
 protected:
  /// The (S, {?x}) generalised t-graph of the clique-branch family with
  /// an m-clique.
  GeneralizedTGraph CliqueBranchS(int m) {
    PatternTree tree = MakeCliqueBranchTree(&pool_, m);
    TripleSet s = tree.pattern(0);
    s.InsertAll(tree.pattern(1));
    return GeneralizedTGraph(std::move(s), {pool_.InternVariable("x")});
  }

  std::vector<TermId> CliqueVars(int m) {
    std::vector<TermId> vars;
    for (int i = 1; i <= m; ++i) {
      vars.push_back(pool_.InternVariable("o" + std::to_string(i)));
    }
    return vars;
  }

  TermPool pool_;
};

TEST_F(HardnessTest, BruteForceCliqueOracle) {
  UndirectedGraph triangle(4);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  triangle.AddEdge(2, 3);
  EXPECT_TRUE(HasCliqueBruteForce(triangle, 3));
  EXPECT_FALSE(HasCliqueBruteForce(triangle, 4));
  EXPECT_TRUE(HasCliqueBruteForce(UndirectedGraph::Complete(5), 5));
  EXPECT_FALSE(HasCliqueBruteForce(UndirectedGraph::Cycle(5), 3));
  EXPECT_TRUE(HasCliqueBruteForce(UndirectedGraph(3), 1));
  EXPECT_FALSE(HasCliqueBruteForce(UndirectedGraph(2), 3));
}

TEST_F(HardnessTest, MinorMapOntoCliqueIsValid) {
  const int k = 2, K = 1, m = 2;  // (2x1)-grid onto K_2.
  GeneralizedTGraph s = CliqueBranchS(m);
  GridMinorMap gamma = MinorMapOntoClique(k, K, CliqueVars(m));
  EXPECT_TRUE(ValidateMinorMap(s, gamma).ok());
}

TEST_F(HardnessTest, MinorMapWithBlocksIsValid) {
  // Non-singleton branch sets: (2x1)-grid onto K_5.
  GeneralizedTGraph s = CliqueBranchS(5);
  GridMinorMap gamma = MinorMapOntoClique(2, 1, CliqueVars(5));
  EXPECT_TRUE(ValidateMinorMap(s, gamma).ok());
}

TEST_F(HardnessTest, MinorMapValidationCatchesOverlap) {
  GeneralizedTGraph s = CliqueBranchS(4);
  GridMinorMap gamma = MinorMapOntoClique(2, 1, CliqueVars(4));
  // Corrupt: duplicate a variable across branch sets.
  gamma.branch_sets[1][0] = gamma.branch_sets[0][0];
  EXPECT_FALSE(ValidateMinorMap(s, gamma).ok());
}

TEST_F(HardnessTest, MinorMapValidationCatchesNonOnto) {
  GeneralizedTGraph s = CliqueBranchS(5);
  GridMinorMap gamma = MinorMapOntoClique(2, 1, CliqueVars(4));  // Misses o5.
  EXPECT_FALSE(ValidateMinorMap(s, gamma).ok());
}

TEST_F(HardnessTest, GadgetSatisfiesLemma2Conditions) {
  // k = 2: K = 1, m = 2. Lemma 2 on small random hosts.
  const int k = 2, m = 2;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    UndirectedGraph h = GenerateErdosRenyi(6, 0.35, seed);
    if (h.NumEdges() == 0) continue;
    GeneralizedTGraph s = CliqueBranchS(m);
    GridMinorMap gamma = MinorMapOntoClique(k, 1, CliqueVars(m));
    auto b = BuildCliqueGadget(s, h, k, gamma, &pool_);
    ASSERT_TRUE(b.ok()) << b.status().ToString();

    // Condition 1: triples of S over X u I are in B.
    TermId x = pool_.InternVariable("x");
    EXPECT_TRUE(b.value().S.Contains(Triple(x, pool_.InternIri("p"), x)));

    // Condition 2: (B, X) -> (S, X).
    EXPECT_TRUE(HomTo(b.value(), s)) << "seed " << seed;

    // Condition 3: H has a k-clique iff (S, X) -> (B, X). A 2-clique is
    // just an edge, so this must hold whenever H has an edge.
    EXPECT_EQ(HomTo(s, b.value()), HasCliqueBruteForce(h, k)) << "seed " << seed;
  }
}

TEST_F(HardnessTest, GadgetDetectsTriangles) {
  // k = 3: K = 3, m = 9. (S,X) -> (B,X) iff H has a triangle.
  const int k = 3, m = 9;
  GridMinorMap gamma = MinorMapOntoClique(k, 3, CliqueVars(m));

  // A graph with a triangle.
  UndirectedGraph with(5);
  with.AddEdge(0, 1);
  with.AddEdge(1, 2);
  with.AddEdge(0, 2);
  with.AddEdge(2, 3);
  with.AddEdge(3, 4);
  {
    GeneralizedTGraph s = CliqueBranchS(m);
    auto b = BuildCliqueGadget(s, with, k, gamma, &pool_);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_TRUE(HomTo(b.value(), s));
    EXPECT_TRUE(HomTo(s, b.value()));
  }

  // Triangle-free: the 5-cycle.
  {
    GeneralizedTGraph s = CliqueBranchS(m);
    auto b = BuildCliqueGadget(s, UndirectedGraph::Cycle(5), k, gamma, &pool_);
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(HomTo(b.value(), s));
    EXPECT_FALSE(HomTo(s, b.value()));
  }
}

TEST_F(HardnessTest, FreezeProducesGroundInstance) {
  GeneralizedTGraph s = CliqueBranchS(2);
  RdfGraph g(&pool_);
  Mapping mu;
  FreezeTGraph(s, &pool_, &g, &mu);
  EXPECT_EQ(g.size(), s.S.size());
  EXPECT_TRUE(g.triples().IsGround());
  EXPECT_EQ(mu.size(), 1u);  // X = {?x}.
  // mu maps ?x to its frozen IRI and the frozen root loop is in G.
  TermId frozen_x = *mu.Get(pool_.InternVariable("x"));
  EXPECT_TRUE(g.Contains(Triple(frozen_x, pool_.InternIri("p"), frozen_x)));
}

TEST_F(HardnessTest, ReductionMatchesBruteForceForK2) {
  // End to end (Theorem 2): H has a 2-clique iff mu ∉ JPKG.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    UndirectedGraph h = GenerateErdosRenyi(5, seed == 1 ? 0.0 : 0.4, seed);
    auto instance = BuildCliqueReduction(h, 2, &pool_);
    ASSERT_TRUE(instance.ok()) << instance.status().ToString();
    bool clique = HasCliqueBruteForce(h, 2);
    bool member = NaiveWdEval(instance.value().forest, instance.value().graph,
                              instance.value().mu);
    EXPECT_EQ(member, !clique) << "seed " << seed;
  }
}

TEST_F(HardnessTest, Lemma3WitnessOnCliqueBranchFamily) {
  // dw = m-1 for the clique-branch family: witnesses exist for every
  // k <= m-1 and satisfy both Lemma 3 conditions.
  const int m = 4;  // dw = 3.
  PatternForest forest;
  forest.trees.push_back(MakeCliqueBranchTree(&pool_, m));
  for (int k = 1; k <= 3; ++k) {
    auto witness = FindLemma3Witness(forest, k, &pool_);
    ASSERT_TRUE(witness.ok()) << witness.status().ToString();
    ASSERT_TRUE(witness.value().has_value()) << "k=" << k;
    const Lemma3Witness& w = **witness;
    // Condition 1.
    EXPECT_GE(w.element.core_treewidth, k);
    // Condition 2: minimality against the full GtG of the subtree.
    auto gtg = ComputeGtG(forest, w.subtree, &pool_);
    ASSERT_TRUE(gtg.ok());
    for (const GtGElement& other : gtg.value()) {
      if (HomTo(other.graph, w.element.graph)) {
        EXPECT_TRUE(HomTo(w.element.graph, other.graph));
      }
    }
  }
  // Above the width: no witness.
  auto none = FindLemma3Witness(forest, 4, &pool_);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().has_value());
}

TEST_F(HardnessTest, Lemma3NoWitnessOnBoundedWidthFamilies) {
  // dw(F_k) = 1: asking for width >= 2 must come back empty.
  PatternForest fk = MakeFkForest(&pool_, 3);
  auto witness = FindLemma3Witness(fk, 2, &pool_);
  ASSERT_TRUE(witness.ok());
  EXPECT_FALSE(witness.value().has_value());

  // But width >= 1 witnesses trivially exist (every non-empty GtG).
  auto trivial = FindLemma3Witness(fk, 1, &pool_);
  ASSERT_TRUE(trivial.ok());
  EXPECT_TRUE(trivial.value().has_value());
}

TEST_F(HardnessTest, Lemma3WitnessMatchesReductionInput) {
  // The (S, {?x}) the reduction uses is hom-equivalent to the found
  // witness element on the clique-branch family.
  const int m = 4;
  PatternForest forest;
  forest.trees.push_back(MakeCliqueBranchTree(&pool_, m));
  auto witness = FindLemma3Witness(forest, m - 1, &pool_);
  ASSERT_TRUE(witness.ok());
  ASSERT_TRUE(witness.value().has_value());
  GeneralizedTGraph s = CliqueBranchS(m);
  // Equal X and mutual homomorphisms (the renamed S_Delta vs pat(T) u pat(n)).
  EXPECT_EQ(witness.value()->element.graph.X, s.X);
  EXPECT_TRUE(HomTo(witness.value()->element.graph, s));
  EXPECT_TRUE(HomTo(s, witness.value()->element.graph));
}

TEST_F(HardnessTest, ReductionMatchesBruteForceForK3) {
  // Triangle detection through query evaluation.
  struct Case {
    UndirectedGraph h;
    const char* name;
  };
  UndirectedGraph triangle(4);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  triangle.AddEdge(1, 3);
  std::vector<Case> cases;
  cases.push_back({triangle, "triangle"});
  cases.push_back({UndirectedGraph::Cycle(5), "C5"});
  cases.push_back({UndirectedGraph::Complete(4), "K4"});

  for (const Case& c : cases) {
    auto instance = BuildCliqueReduction(c.h, 3, &pool_);
    ASSERT_TRUE(instance.ok()) << instance.status().ToString();
    EXPECT_EQ(instance.value().query_clique_size, 9);
    bool clique = HasCliqueBruteForce(c.h, 3);
    bool member = NaiveWdEval(instance.value().forest, instance.value().graph,
                              instance.value().mu);
    EXPECT_EQ(member, !clique) << c.name;
  }
}

}  // namespace
}  // namespace wdsparql
