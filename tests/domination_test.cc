#include <gtest/gtest.h>

#include <algorithm>

#include "ptree/forest.h"
#include "sparql/parser.h"
#include "support/testlib.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class DominationTest : public ::testing::Test {
 protected:
  /// The root-only subtree of tree `i` of `forest`.
  Subtree RootSubtree(const PatternForest& forest, int i) {
    Subtree subtree;
    subtree.tree = &forest.trees[i];
    subtree.nodes = {forest.trees[i].root()};
    return subtree;
  }

  TermPool pool_;
};

TEST_F(DominationTest, SupportOfFkRootIsT1T2) {
  // Example 4: supp(T1[r1]) = {1, 2} (trees T1 and T2; T3's root has an
  // extra variable ?z).
  PatternForest forest = MakeFkForest(&pool_, 2);
  std::vector<SupportEntry> support = ComputeSupport(forest, RootSubtree(forest, 0));
  ASSERT_EQ(support.size(), 2u);
  EXPECT_EQ(support[0].tree_index, 0);
  EXPECT_EQ(support[1].tree_index, 1);
}

TEST_F(DominationTest, SupportOfT1WithN11IncludesT3) {
  // supp(T1[r1, n11]) = {1, 3} in the paper's 1-based numbering.
  PatternForest forest = MakeFkForest(&pool_, 2);
  Subtree subtree;
  subtree.tree = &forest.trees[0];
  subtree.nodes = {0, 1};  // Root + n11.
  std::vector<SupportEntry> support = ComputeSupport(forest, subtree);
  ASSERT_EQ(support.size(), 2u);
  EXPECT_EQ(support[0].tree_index, 0);
  EXPECT_EQ(support[1].tree_index, 2);
}

TEST_F(DominationTest, GtGOfFkRootHasTwoValidAssignments) {
  // Example 4: GtG(T1[r1]) = {S_Delta1, S_Delta2} with
  // Delta1 = {1 -> n11, 2 -> n2} and Delta2 = {1 -> n12, 2 -> n2}; partial
  // assignments are invalid.
  for (int k = 2; k <= 3; ++k) {
    PatternForest forest = MakeFkForest(&pool_, k);
    auto gtg = ComputeGtG(forest, RootSubtree(forest, 0), &pool_);
    ASSERT_TRUE(gtg.ok());
    ASSERT_EQ(gtg.value().size(), 2u) << "k=" << k;
    // Every valid assignment covers both supporting trees.
    for (const GtGElement& element : gtg.value()) {
      EXPECT_EQ(element.delta.size(), 2u);
      EXPECT_TRUE(element.delta.count(0) > 0 && element.delta.count(1) > 0);
    }
    // Core treewidths are {1, k-1} (Example 5 / Figure 3).
    std::vector<int> widths;
    for (const GtGElement& element : gtg.value()) {
      widths.push_back(element.core_treewidth);
    }
    std::sort(widths.begin(), widths.end());
    EXPECT_EQ(widths.front(), 1);
    EXPECT_EQ(widths.back(), std::max(k - 1, 1));
  }
}

TEST_F(DominationTest, GtGDominationOnFkRoot) {
  // (S_Delta1, X) -> (S_Delta2, X): the width-1 element dominates, so
  // GtG(T1[r1]) is 1-dominated despite containing a width-(k-1) element.
  PatternForest forest = MakeFkForest(&pool_, 3);
  auto gtg = ComputeGtG(forest, RootSubtree(forest, 0), &pool_);
  ASSERT_TRUE(gtg.ok());
  ASSERT_EQ(gtg.value().size(), 2u);
  const GtGElement* low = &gtg.value()[0];
  const GtGElement* high = &gtg.value()[1];
  if (low->core_treewidth > high->core_treewidth) std::swap(low, high);
  EXPECT_EQ(low->core_treewidth, 1);
  EXPECT_EQ(high->core_treewidth, 2);
  EXPECT_TRUE(HomTo(low->graph, high->graph));
  EXPECT_EQ(MinDominationWidth(gtg.value()), 1);
}

TEST_F(DominationTest, GtGOfT1N12SubtreeIsSingleton) {
  // GtG(T1[r1, n12]) = {(S_Delta', ...)} with Delta' = {1 -> n11}: ctw 1.
  PatternForest forest = MakeFkForest(&pool_, 2);
  Subtree subtree;
  subtree.tree = &forest.trees[0];
  subtree.nodes = {0, 2};  // Root + n12.
  auto gtg = ComputeGtG(forest, subtree, &pool_);
  ASSERT_TRUE(gtg.ok());
  ASSERT_EQ(gtg.value().size(), 1u);
  EXPECT_EQ(gtg.value()[0].core_treewidth, 1);
}

TEST_F(DominationTest, DwOfFkIsOne) {
  // Example 5: dw(F_k) = 1 for every k >= 2.
  for (int k = 2; k <= 4; ++k) {
    PatternForest forest = MakeFkForest(&pool_, k);
    Result<int> dw = DominationWidth(forest, &pool_);
    ASSERT_TRUE(dw.ok()) << dw.status().ToString();
    EXPECT_EQ(dw.value(), 1) << "k=" << k;
  }
}

TEST_F(DominationTest, DwOfCliqueBranchIsKMinus1) {
  // The intractable family: a clique child that cannot fold.
  for (int k = 2; k <= 4; ++k) {
    PatternForest forest;
    forest.trees.push_back(MakeCliqueBranchTree(&pool_, k));
    Result<int> dw = DominationWidth(forest, &pool_);
    ASSERT_TRUE(dw.ok());
    EXPECT_EQ(dw.value(), std::max(k - 1, 1)) << "k=" << k;
  }
}

TEST_F(DominationTest, DwOfSingleNodeTreeIsOne) {
  auto pattern = ParsePattern("(?x p ?y) AND (?y p ?z)", &pool_);
  ASSERT_TRUE(pattern.ok());
  Result<int> dw = DominationWidthOfPattern(pattern.value(), &pool_);
  ASSERT_TRUE(dw.ok());
  EXPECT_EQ(dw.value(), 1);
}

TEST_F(DominationTest, BudgetIsEnforced) {
  PatternForest forest = MakeFkForest(&pool_, 2);
  DominationOptions options;
  options.max_subtrees = 1;
  Result<int> dw = DominationWidth(forest, &pool_, options);
  ASSERT_FALSE(dw.ok());
  EXPECT_EQ(dw.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DominationTest, MinDominationWidthOfEmptyIsOne) {
  EXPECT_EQ(MinDominationWidth({}), 1);
}

TEST_F(DominationTest, DwMatchesBwOnRandomUnionFreePatterns) {
  // Proposition 5: dw(P) = bw(P) for UNION-free well-designed P.
  Rng rng(5050);
  int checked = 0;
  for (int trial = 0; trial < 15; ++trial) {
    testlib::RandomPatternOptions options;
    options.max_depth = 2;
    options.max_opts_per_node = 2;
    PatternPtr p = testlib::RandomWellDesignedPattern(&rng, &pool_, options);
    auto forest = BuildPatternForest(p, pool_);
    ASSERT_TRUE(forest.ok());
    Result<int> dw = DominationWidth(forest.value(), &pool_);
    if (!dw.ok()) continue;
    int bw = BranchTreewidth(forest.value().trees[0]);
    EXPECT_EQ(dw.value(), bw) << p->ToString(pool_);
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

}  // namespace
}  // namespace wdsparql
