#include <gtest/gtest.h>

#include "hom/core.h"
#include "hom/homomorphism.h"
#include "hom/pebble.h"
#include "ptree/tgraph.h"
#include "rdf/generator.h"
#include "support/testlib.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class PebbleTest : public ::testing::Test {
 protected:
  TermId V(const char* name) { return pool_.InternVariable(name); }
  TermId I(const char* name) { return pool_.InternIri(name); }

  TermPool pool_;
};

TEST_F(PebbleTest, NoFreeVariablesReducesToDirectCheck) {
  // Property (1): with vars(S) \ X empty, ->mu_k equals ->mu.
  TripleSet s;
  s.Insert(Triple(V("x"), I("p"), V("y")));
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  VarAssignment mu;
  mu[V("x")] = I("a");
  mu[V("y")] = I("b");
  EXPECT_TRUE(PebbleGameWins(s, mu, g.triples(), 2));
  mu[V("y")] = I("a");
  EXPECT_FALSE(PebbleGameWins(s, mu, g.triples(), 2));
}

TEST_F(PebbleTest, HomomorphismImpliesDuplicatorWin) {
  // Property (2): ->mu implies ->mu_k for every k.
  TripleSet s;
  s.Insert(Triple(V("u"), I("e"), V("v")));
  s.Insert(Triple(V("v"), I("e"), V("w")));
  RdfGraph g(&pool_);
  GeneratePathGraph(4, "e", &g);
  ASSERT_TRUE(HasHomomorphism(s, {}, g.triples()));
  for (int k = 1; k <= 3; ++k) {
    EXPECT_TRUE(PebbleGameWins(s, {}, g.triples(), k)) << "k=" << k;
  }
}

TEST_F(PebbleTest, SpoilerWinsOnEmptyDomainWithFreeVars) {
  TripleSet s;
  s.Insert(Triple(V("u"), I("e"), V("v")));
  TripleSet empty_target;
  EXPECT_FALSE(PebbleGameWins(s, {}, empty_target, 2));
}

TEST_F(PebbleTest, TreeSourceGameIsExactAtK2) {
  // Proposition 3 with ctw = 1: the 2-pebble game equals homomorphism for
  // tree-shaped (acyclic) sources. A directed path of length 3 does not
  // map into a shorter path, and the Spoiler can prove it with 2 pebbles.
  TripleSet path3;
  path3.Insert(Triple(V("a0"), I("e"), V("a1")));
  path3.Insert(Triple(V("a1"), I("e"), V("a2")));
  path3.Insert(Triple(V("a2"), I("e"), V("a3")));
  RdfGraph short_path(&pool_);
  GeneratePathGraph(2, "e", &short_path);
  EXPECT_FALSE(HasHomomorphism(path3, {}, short_path.triples()));
  EXPECT_FALSE(PebbleGameWins(path3, {}, short_path.triples(), 2));
}

TEST_F(PebbleTest, TwoPebblesCannotSeeOddGirth) {
  // The classic gap witness: a directed 3-cycle has no homomorphism into
  // a directed 6-cycle (wrapping changes residues), but with 2 pebbles
  // the Duplicator survives: ->_2 is strictly weaker than ->.
  TripleSet cycle3;
  cycle3.Insert(Triple(V("c0"), I("e"), V("c1")));
  cycle3.Insert(Triple(V("c1"), I("e"), V("c2")));
  cycle3.Insert(Triple(V("c2"), I("e"), V("c0")));
  RdfGraph cycle6(&pool_);
  GenerateCycleGraph(6, "e", &cycle6);
  EXPECT_FALSE(HasHomomorphism(cycle3, {}, cycle6.triples()));
  EXPECT_TRUE(PebbleGameWins(cycle3, {}, cycle6.triples(), 2))
      << "2 pebbles must not refute the 3-cycle";
  // ctw(cycle3) = 2, so Proposition 3 promises exactness at k = 3.
  EXPECT_FALSE(PebbleGameWins(cycle3, {}, cycle6.triples(), 3));
}

TEST_F(PebbleTest, KEqualToFreeVarsIsExact) {
  // With as many pebbles as free variables the game is exact.
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 14, 2, &g);
    TripleSet s;
    for (int i = 0; i < 3; ++i) {
      s.Insert(Triple(V(("r" + std::to_string(rng.NextBounded(3))).c_str()),
                      I(("p" + std::to_string(rng.NextBounded(2))).c_str()),
                      V(("r" + std::to_string(rng.NextBounded(3))).c_str())));
    }
    int free_vars = static_cast<int>(s.Variables().size());
    bool exact = HasHomomorphism(s, {}, g.triples());
    bool game = PebbleGameWins(s, {}, g.triples(), std::max(free_vars, 1));
    EXPECT_EQ(exact, game) << "trial " << trial;
  }
}

TEST_F(PebbleTest, RelaxationNeverRefutesHomomorphism) {
  // Property (2) as a randomized sweep: whenever a homomorphism exists,
  // every pebble count must accept.
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 5, 30, 2, &g);
    TripleSet s;
    for (int i = 0; i < 4; ++i) {
      s.Insert(Triple(V(("s" + std::to_string(rng.NextBounded(4))).c_str()),
                      I(("p" + std::to_string(rng.NextBounded(2))).c_str()),
                      V(("s" + std::to_string(rng.NextBounded(4))).c_str())));
    }
    if (!HasHomomorphism(s, {}, g.triples())) continue;
    for (int k = 1; k <= 3; ++k) {
      EXPECT_TRUE(PebbleGameWins(s, {}, g.triples(), k));
    }
  }
}

TEST_F(PebbleTest, MonotoneInK) {
  // More pebbles only help the Spoiler: wins(k+1) implies wins(k).
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 10, 2, &g);
    TripleSet s;
    for (int i = 0; i < 4; ++i) {
      s.Insert(Triple(V(("m" + std::to_string(rng.NextBounded(4))).c_str()),
                      I(("p" + std::to_string(rng.NextBounded(2))).c_str()),
                      V(("m" + std::to_string(rng.NextBounded(4))).c_str())));
    }
    bool prev = true;
    for (int k = 1; k <= 4; ++k) {
      bool wins = PebbleGameWins(s, {}, g.triples(), k);
      EXPECT_TRUE(prev || !wins) << "duplicator win must be antitone in k";
      prev = wins;
    }
  }
}

TEST_F(PebbleTest, Proposition3BoundedCtwAgreement) {
  // ctw(S, X) <= k-1 implies ->mu_k == ->mu. Use tree-shaped sources
  // (ctw = 1) against random graphs with k = 2.
  Rng rng(55);
  for (int trial = 0; trial < 25; ++trial) {
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 8, 2, &g);
    // Random oriented path source: ctw <= 1.
    TripleSet s;
    int length = 2 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < length; ++i) {
      s.Insert(Triple(V(("q" + std::to_string(i)).c_str()),
                      I(("p" + std::to_string(rng.NextBounded(2))).c_str()),
                      V(("q" + std::to_string(i + 1)).c_str())));
    }
    bool exact = HasHomomorphism(s, {}, g.triples());
    bool game = PebbleGameWins(s, {}, g.triples(), 2);
    EXPECT_EQ(exact, game) << "trial " << trial;
  }
}

TEST_F(PebbleTest, Proposition3WithDistinguishedVariables) {
  // Same agreement with a fixed mu on distinguished variables.
  Rng rng(66);
  for (int trial = 0; trial < 20; ++trial) {
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 12, 2, &g);
    TripleSet s;
    s.Insert(Triple(V("x"), I("p0"), V("t1")));
    s.Insert(Triple(V("t1"), I("p1"), V("t2")));
    std::vector<TermId> domain = g.Domain();
    if (domain.empty()) continue;
    VarAssignment mu;
    mu[V("x")] = domain[rng.NextBounded(domain.size())];
    bool exact = HasHomomorphism(s, mu, g.triples());
    bool game = PebbleGameWins(s, mu, g.triples(), 2);
    EXPECT_EQ(exact, game) << "trial " << trial;
  }
}

TEST_F(PebbleTest, StatsAreReported) {
  TripleSet s;
  s.Insert(Triple(V("u"), I("e"), V("v")));
  RdfGraph g(&pool_);
  GeneratePathGraph(3, "e", &g);
  PebbleGameStats stats;
  PebbleGameWins(s, {}, g.triples(), 2, &stats);
  EXPECT_GT(stats.maps_created, 0u);
}

TEST_F(PebbleTest, FixedOnlyTripleFailureIsDetected) {
  // A triple fully fixed by mu that fails must defeat the Duplicator even
  // if the free part is satisfiable.
  TripleSet s;
  s.Insert(Triple(V("x"), I("p"), V("x")));  // Fixed by mu below.
  s.Insert(Triple(V("u"), I("e"), V("v")));  // Free part.
  RdfGraph g(&pool_);
  g.Insert("a", "e", "b");
  g.Insert("c", "p", "c");
  VarAssignment mu;
  mu[V("x")] = I("a");  // (a p a) is absent.
  EXPECT_FALSE(PebbleGameWins(s, mu, g.triples(), 2));
  mu[V("x")] = I("c");  // (c p c) is present.
  EXPECT_TRUE(PebbleGameWins(s, mu, g.triples(), 2));
}

}  // namespace
}  // namespace wdsparql
