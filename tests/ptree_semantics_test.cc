#include <gtest/gtest.h>

#include <algorithm>

#include "ptree/forest.h"
#include "ptree/semantics.h"
#include "rdf/generator.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "support/testlib.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

class PtreeSemanticsTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const char* text) {
    auto result = ParsePattern(text, &pool_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  }
  PatternTree Tree(const char* text) {
    auto result = BuildPatternTree(Parse(text), pool_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  TermPool pool_;
};

TEST_F(PtreeSemanticsTest, RootOnlyAnswersAreMaximal) {
  PatternTree tree = Tree("(?x p ?y) OPT (?y q ?z)");
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("c", "p", "d");
  g.Insert("b", "q", "e");

  // (a, b) must extend; the bare root mapping is not an answer.
  Mapping extended = testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}, {"z", "e"}});
  Mapping bare = testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}});
  Mapping unextendable = testlib::MakeMapping(&pool_, {{"x", "c"}, {"y", "d"}});

  EXPECT_TRUE(TreeContains(tree, g, extended));
  EXPECT_FALSE(TreeContains(tree, g, bare));
  EXPECT_TRUE(TreeContains(tree, g, unextendable));
}

TEST_F(PtreeSemanticsTest, WrongDomainIsRejected) {
  PatternTree tree = Tree("(?x p ?y) OPT (?y q ?z)");
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  // Domain {x} does not match any subtree variable set.
  Mapping too_small = testlib::MakeMapping(&pool_, {{"x", "a"}});
  EXPECT_FALSE(TreeContains(tree, g, too_small));
  // Unknown variable in the domain.
  Mapping off_domain = testlib::MakeMapping(&pool_, {{"x", "a"}, {"nothere", "b"}});
  EXPECT_FALSE(TreeContains(tree, g, off_domain));
}

TEST_F(PtreeSemanticsTest, EnumerationMatchesAstSemantics) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    PatternPtr p = testlib::RandomWellDesignedPattern(&rng, &pool_);
    auto tree = BuildPatternTree(p, pool_);
    ASSERT_TRUE(tree.ok());
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 5, 18, 3, &g);
    EXPECT_EQ(EnumerateTreeSolutions(tree.value(), g), Evaluate(*p, g))
        << "trial " << trial << ": " << p->ToString(pool_);
  }
}

TEST_F(PtreeSemanticsTest, TreeContainsAgreesWithEnumeration) {
  Rng rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    PatternPtr p = testlib::RandomWellDesignedPattern(&rng, &pool_);
    auto tree = BuildPatternTree(p, pool_);
    ASSERT_TRUE(tree.ok());
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 12, 3, &g);
    std::vector<Mapping> answers = EnumerateTreeSolutions(tree.value(), g);
    for (const Mapping& probe : testlib::MembershipProbes(p, g, &rng, 6)) {
      bool expected =
          std::find(answers.begin(), answers.end(), probe) != answers.end();
      EXPECT_EQ(TreeContains(tree.value(), g, probe), expected);
    }
  }
}

TEST_F(PtreeSemanticsTest, ForestContainsIsUnionOfTrees) {
  PatternPtr p = Parse("((?x p ?y) OPT (?y q ?z)) UNION (?x r ?y)");
  auto forest = BuildPatternForest(p, pool_);
  ASSERT_TRUE(forest.ok());
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("u", "r", "v");

  Mapping from_first = testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}});
  Mapping from_second = testlib::MakeMapping(&pool_, {{"x", "u"}, {"y", "v"}});
  EXPECT_TRUE(ForestContains(forest.value(), g, from_first));
  EXPECT_TRUE(ForestContains(forest.value(), g, from_second));

  Mapping nowhere = testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "v"}});
  EXPECT_FALSE(ForestContains(forest.value(), g, nowhere));
}

TEST_F(PtreeSemanticsTest, ForestEnumerationMatchesAstSemantics) {
  Rng rng(29);
  for (int trial = 0; trial < 15; ++trial) {
    PatternPtr p = testlib::RandomWellDesignedUnion(&rng, &pool_, 3);
    auto forest = BuildPatternForest(p, pool_);
    ASSERT_TRUE(forest.ok());
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 4, 15, 3, &g);
    EXPECT_EQ(EnumerateForestSolutions(forest.value(), g), Evaluate(*p, g));
  }
}

TEST_F(PtreeSemanticsTest, FkForestOnHandCraftedData) {
  // Exercise the F_2 forest on a graph where each tree contributes.
  PatternForest forest = MakeFkForest(&pool_, 2);
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");   // Root of every tree matches (x=a, y=b).
  g.Insert("c", "q", "a");   // n11 of T1 / part of T3 root.
  g.Insert("d", "q", "c");   // n2 of T2 second triple.

  // T2: root (a,b); child n2 = {(?z,q,?x),(?w,q,?z)} extends with z=c, w=d.
  Mapping t2_answer = testlib::MakeMapping(
      &pool_, {{"x", "a"}, {"y", "b"}, {"z", "c"}, {"w", "d"}});
  EXPECT_TRUE(ForestContains(forest, g, t2_answer));

  // T3: root needs (?x,p,?y) and (?z,q,?x): x=a,y=b,z=c; child n3 needs a
  // self-loop (?o,r,?o) which is absent, so the root mapping is maximal.
  Mapping t3_answer =
      testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}, {"z", "c"}});
  EXPECT_TRUE(ForestContains(forest, g, t3_answer));

  // The bare root (a,b) is NOT an answer of T1 (n11 extends via z=c) and
  // not of T2 (n2 extends); T3's root needs ?z. So it is not in JFKG.
  Mapping bare = testlib::MakeMapping(&pool_, {{"x", "a"}, {"y", "b"}});
  EXPECT_FALSE(ForestContains(forest, g, bare));
}

}  // namespace
}  // namespace wdsparql
