#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "wdsparql/wdsparql.h"

/// \file
/// Tests of the request-scoped tracing subsystem (wdsparql/trace.h): the
/// flight recorder's wraparound/completeness contract (only traces that
/// survived intact are ever reported), span parentage forming a tree
/// rooted at the request span across the full parse/plan/enumerate/
/// subtree stack, commit and checkpoint traces, the null disabled path,
/// and — under the TSan CI job — many concurrent traced cursors against
/// a live writer with a polling reader.

namespace wdsparql {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wdsparql_trace_" + name;
}

std::string FreshPath(const std::string& name) {
  std::string path = TempPath(name);
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

Database MakeSmallDatabase(std::size_t trace_capacity = 4096) {
  DatabaseOptions options;
  options.trace_capacity = trace_capacity;
  Database db(options);
  db.AddTriple("alice", "knows", "bob");
  db.AddTriple("bob", "knows", "carol");
  db.AddTriple("bob", "email", "bob-at-example");
  return db;
}

/// Publishes one synthetic complete trace of `spans` spans.
void PublishTrace(TraceRecorder& recorder, uint64_t trace_id,
                  std::size_t spans) {
  TraceContext ctx(&recorder, trace_id);
  uint32_t root = ctx.StartSpan("request");
  for (std::size_t i = 1; i < spans; ++i) {
    ctx.EndSpan(ctx.StartSpan("child", root));
  }
  ctx.EndSpan(root);
  ctx.Flush();
}

/// The structural invariants every reported trace must satisfy: a root
/// (span 1, no parent) whose stamped span count matches, distinct span
/// ids, and every parent naming an earlier span of the same trace.
void ExpectWellFormed(const std::vector<TraceSpan>& trace) {
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front().span_id, 1u);
  EXPECT_EQ(trace.front().parent_id, 0u);
  EXPECT_EQ(trace.front().trace_spans, trace.size());
  std::set<uint32_t> ids;
  for (const TraceSpan& span : trace) {
    EXPECT_EQ(span.trace_id, trace.front().trace_id);
    EXPECT_TRUE(ids.insert(span.span_id).second);
    if (span.span_id != 1) {
      EXPECT_NE(span.parent_id, 0u);
      EXPECT_LT(span.parent_id, span.span_id);
      EXPECT_TRUE(ids.count(span.parent_id)) << "dangling parent";
    }
    EXPECT_NE(span.duration_ns, TraceSpan::kOpenDuration)
        << "open span escaped a flush";
  }
}

const TraceSpan* FindSpan(const std::vector<TraceSpan>& trace,
                          const std::string& name) {
  for (const TraceSpan& span : trace) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// Recorder: wraparound and completeness
// ---------------------------------------------------------------------

TEST(TraceRecorderTest, ReportsOnlyCompleteTraces) {
  TraceRecorder recorder(16);
  ASSERT_EQ(recorder.capacity(), 16u);
  // 10 traces of 4 spans: 40 spans through a 16-slot ring. At most the
  // newest 4 can be intact; everything reported must be whole.
  for (int i = 0; i < 10; ++i) {
    PublishTrace(recorder, recorder.NewTraceId(), 4);
  }
  std::vector<std::vector<TraceSpan>> traces = recorder.CollectTraces(16);
  ASSERT_FALSE(traces.empty());
  EXPECT_LE(traces.size(), 4u);
  for (const auto& trace : traces) {
    ExpectWellFormed(trace);
    EXPECT_EQ(trace.size(), 4u);
  }
  // Newest first: the last published trace id leads.
  EXPECT_GT(traces.front().front().trace_id,
            traces.back().front().trace_id);
}

TEST(TraceRecorderTest, PartiallyOverwrittenTraceIsDropped) {
  TraceRecorder recorder(16);
  uint64_t old_id = recorder.NewTraceId();
  PublishTrace(recorder, old_id, 8);
  // 12 more spans wrap the 16-slot ring into the old trace's slots.
  PublishTrace(recorder, recorder.NewTraceId(), 12);
  for (const auto& trace : recorder.CollectTraces(16)) {
    EXPECT_NE(trace.front().trace_id, old_id)
        << "a clobbered trace must never be reported";
    ExpectWellFormed(trace);
  }
}

TEST(TraceRecorderTest, TraceLargerThanRingIsDiscardedCleanly) {
  TraceRecorder recorder(16);
  PublishTrace(recorder, recorder.NewTraceId(), 32);  // Twice the ring.
  // The root span (id 1) is in the dropped prefix, so nothing reports.
  EXPECT_TRUE(recorder.CollectTraces(16).empty());
  // The ring still works for the next, normal-sized trace.
  PublishTrace(recorder, recorder.NewTraceId(), 4);
  ASSERT_EQ(recorder.CollectTraces(16).size(), 1u);
}

TEST(TraceRecorderTest, CollectHonoursMaxTraces) {
  TraceRecorder recorder(64);
  for (int i = 0; i < 6; ++i) {
    PublishTrace(recorder, recorder.NewTraceId(), 2);
  }
  EXPECT_EQ(recorder.CollectTraces(3).size(), 3u);
}

// ---------------------------------------------------------------------
// Context: disabled path, annotations, caps
// ---------------------------------------------------------------------

TEST(TraceContextTest, DisabledContextRecordsNothing) {
  TraceContext ctx;  // No recorder.
  EXPECT_FALSE(ctx.enabled());
  uint32_t span = ctx.StartSpan("request");
  EXPECT_EQ(span, 0u);
  ctx.Annotate(span, "key", std::uint64_t{7});
  ctx.EndSpan(span);
  ctx.Flush();
  EXPECT_TRUE(ctx.spans().empty());
}

TEST(TraceContextTest, DisabledDatabaseHasNoRecorder) {
  DatabaseOptions options;
  options.trace_capacity = 0;
  Database db(options);
  db.AddTriple("a", "b", "c");
  EXPECT_EQ(db.trace_recorder(), nullptr);
  EXPECT_EQ(db.DumpTraces(), "{\"traces\":[]}");

  // The full execution stack runs untraced without complaint.
  Statement stmt = db.OpenSession().Prepare("(?x b ?y)");
  ASSERT_TRUE(stmt.ok());
  Cursor cursor = stmt.Execute();
  while (cursor.Next()) {
  }
  EXPECT_EQ(cursor.state(), Cursor::State::kExhausted);
}

TEST(TraceContextTest, AnnotationsAndNamesAreBounded) {
  TraceRecorder recorder(16);
  TraceContext ctx(&recorder);
  uint32_t root = ctx.StartSpan("a-name-much-longer-than-twenty-chars");
  ctx.Annotate(root, "key", "value");
  ctx.Annotate(root, "k2", std::uint64_t{42});
  ctx.Annotate(root, "k3", "v3");
  ctx.Annotate(root, "k4", "v4");
  ctx.Annotate(root, "overflow", "dropped");  // Fifth: silently dropped.
  ctx.EndSpan(root);
  ctx.Flush();
  auto traces = recorder.CollectTraces(1);
  ASSERT_EQ(traces.size(), 1u);
  const TraceSpan& span = traces[0][0];
  EXPECT_EQ(span.annotation_count, TraceSpan::kMaxAnnotations);
  EXPECT_EQ(std::string(span.annotations[1].key), "k2");
  EXPECT_EQ(std::string(span.annotations[1].value), "42");
  // Truncated, NUL-terminated name.
  EXPECT_EQ(std::string(span.name).size(), sizeof(span.name) - 1);
}

TEST(TraceContextTest, FlushEndsOpenSpansAndIsIdempotent) {
  TraceRecorder recorder(16);
  TraceContext ctx(&recorder);
  ctx.StartSpan("request");          // Left open deliberately.
  ctx.StartSpan("child", 1);         // Also open.
  ctx.Flush();
  ctx.Flush();
  auto traces = recorder.CollectTraces(4);
  ASSERT_EQ(traces.size(), 1u);
  ExpectWellFormed(traces[0]);
  EXPECT_EQ(traces[0].size(), 2u);
}

// ---------------------------------------------------------------------
// End-to-end: query spans form a tree under the request span
// ---------------------------------------------------------------------

TEST(TraceEndToEndTest, QuerySpansFormTreeRootedAtRequest) {
  Database db = MakeSmallDatabase();
  TraceRecorder* recorder = db.trace_recorder();
  ASSERT_NE(recorder, nullptr);

  TraceContext ctx(recorder);
  uint32_t root = ctx.StartSpan("request");
  {
    ExecOptions exec;
    exec.trace = &ctx;
    exec.trace_parent = root;
    Statement stmt = db.OpenSession().Prepare("(?x knows ?y) OPT (?y email ?e)");
    ASSERT_TRUE(stmt.ok());
    Cursor cursor = stmt.Execute(exec);
    std::size_t rows = 0;
    while (cursor.Next()) ++rows;
    EXPECT_GT(rows, 0u);
  }
  ctx.EndSpan(root);
  ctx.Flush();

  auto traces = recorder->CollectTraces(1);
  ASSERT_EQ(traces.size(), 1u);
  const std::vector<TraceSpan>& trace = traces[0];
  ExpectWellFormed(trace);
  EXPECT_EQ(trace[0].trace_id, ctx.trace_id());
  ASSERT_STREQ(trace[0].name, "request");

  const TraceSpan* plan = FindSpan(trace, "plan");
  const TraceSpan* enumerate = FindSpan(trace, "enumerate");
  const TraceSpan* subtree = FindSpan(trace, "subtree");
  ASSERT_NE(plan, nullptr);
  ASSERT_NE(enumerate, nullptr);
  ASSERT_NE(subtree, nullptr);
  EXPECT_EQ(plan->parent_id, 1u);
  EXPECT_EQ(enumerate->parent_id, 1u);
  // Every subtree span hangs off the enumerate span.
  for (const TraceSpan& span : trace) {
    if (std::string(span.name) == "subtree") {
      EXPECT_EQ(span.parent_id, enumerate->span_id);
    }
  }
  // The enumerate span carries the outcome annotations.
  bool saw_rows = false, saw_outcome = false;
  for (std::size_t i = 0; i < enumerate->annotation_count; ++i) {
    std::string key = enumerate->annotations[i].key;
    if (key == "rows") saw_rows = true;
    if (key == "outcome") {
      saw_outcome = true;
      EXPECT_EQ(std::string(enumerate->annotations[i].value), "exhausted");
    }
  }
  EXPECT_TRUE(saw_rows);
  EXPECT_TRUE(saw_outcome);
}

TEST(TraceEndToEndTest, CommitPublishesSelfRootedTrace) {
  Database db = MakeSmallDatabase();
  WriteBatch batch;
  batch.Add("carol", "knows", "dave");
  batch.Add("dave", "email", "dave-at-example");
  ASSERT_TRUE(db.Apply(std::move(batch)).ok());

  auto traces = db.trace_recorder()->CollectTraces(16);
  const std::vector<TraceSpan>* commit_trace = nullptr;
  for (const auto& trace : traces) {
    if (std::string(trace[0].name) == "commit") {
      commit_trace = &trace;
      break;
    }
  }
  ASSERT_NE(commit_trace, nullptr);
  ExpectWellFormed(*commit_trace);
  const TraceSpan* build = FindSpan(*commit_trace, "delta_build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->parent_id, 1u);
  EXPECT_TRUE(FindSpan(*commit_trace, "publish") != nullptr ||
              FindSpan(*commit_trace, "compact") != nullptr);
}

TEST(TraceEndToEndTest, CallerContextOwnsCommitSpans) {
  Database db = MakeSmallDatabase();
  TraceContext ctx(db.trace_recorder());
  uint32_t root = ctx.StartSpan("request");
  WriteBatch batch;
  batch.Add("erin", "knows", "frank");
  ASSERT_TRUE(db.Apply(std::move(batch), nullptr, &ctx).ok());
  ctx.EndSpan(root);
  ctx.Flush();

  auto traces = db.trace_recorder()->CollectTraces(1);
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_STREQ(traces[0][0].name, "request");
  const TraceSpan* commit = FindSpan(traces[0], "commit");
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(commit->parent_id, 1u);
  const TraceSpan* build = FindSpan(traces[0], "delta_build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->parent_id, commit->span_id);
}

TEST(TraceEndToEndTest, WalAndCheckpointSpans) {
  std::string path = FreshPath("wal_spans.snap");
  OpenOptions open_options;
  open_options.durability = Durability::kWal;
  open_options.create_if_missing = true;
  Result<Database> opened = Database::Open(path, open_options);
  ASSERT_TRUE(opened.ok());
  Database db = std::move(opened).value();

  WriteBatch batch;
  batch.Add("alice", "knows", "bob");
  ASSERT_TRUE(db.Apply(std::move(batch)).ok());

  // The WAL-ed commit trace carries the append span under the commit.
  bool saw_wal_append = false;
  for (const auto& trace : db.trace_recorder()->CollectTraces(16)) {
    if (std::string(trace[0].name) != "commit") continue;
    const TraceSpan* append = FindSpan(trace, "wal.append");
    if (append != nullptr) {
      saw_wal_append = true;
      EXPECT_EQ(append->parent_id, FindSpan(trace, "commit")->span_id);
    }
  }
  EXPECT_TRUE(saw_wal_append);

  ASSERT_TRUE(db.Checkpoint().ok());
  bool saw_checkpoint = false;
  for (const auto& trace : db.trace_recorder()->CollectTraces(16)) {
    if (std::string(trace[0].name) != "checkpoint") continue;
    saw_checkpoint = true;
    ExpectWellFormed(trace);
    const TraceSpan* snap = FindSpan(trace, "write_snapshot");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->parent_id, 1u);
    EXPECT_NE(FindSpan(trace, "wal.truncate"), nullptr);
  }
  EXPECT_TRUE(saw_checkpoint);

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(TraceEndToEndTest, DumpJsonIsWellFormedEnough) {
  Database db = MakeSmallDatabase();
  TraceContext ctx(db.trace_recorder());
  uint32_t root = ctx.StartSpan("request");
  ctx.Annotate(root, "path", "/query");
  ctx.EndSpan(root);
  ctx.Flush();
  std::string json = db.DumpTraces(4);
  EXPECT_NE(json.find("\"traces\":["), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"/query\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity without a parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---------------------------------------------------------------------
// Concurrency (the TSan CI job runs this test under
// -fsanitize=thread; see .github/workflows/ci.yml)
// ---------------------------------------------------------------------

TEST(TraceConcurrencyTest, TracedCursorsVsLiveWriterVsReader) {
  // Small ring on purpose: constant wraparound maximises writer/reader
  // overlap on the same slots.
  Database db = MakeSmallDatabase(/*trace_capacity=*/64);
  TraceRecorder* recorder = db.trace_recorder();
  ASSERT_NE(recorder, nullptr);

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 25;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // A live writer: commits keep publishing commit traces (and new
  // generations) underneath the traced readers.
  std::thread writer([&] {
    int n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      WriteBatch batch;
      std::string subject = "writer" + std::to_string(n++);
      batch.Add(subject, "knows", "bob");
      if (!db.Apply(std::move(batch)).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // A polling reader: continuously reconstructs traces from the live
  // ring; every trace it sees must be whole.
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& trace : recorder->CollectTraces(8)) {
        if (trace.empty() || trace.front().span_id != 1 ||
            trace.front().trace_spans != trace.size()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &failures] {
      for (int q = 0; q < kQueriesPerReader; ++q) {
        TraceContext ctx(db.trace_recorder());
        uint32_t root = ctx.StartSpan("request");
        ExecOptions exec;
        exec.trace = &ctx;
        exec.trace_parent = root;
        Statement stmt = db.OpenSession().Prepare("(?x knows ?y)");
        if (!stmt.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        Cursor cursor = stmt.Execute(exec);
        while (cursor.Next()) {
        }
        ctx.EndSpan(root);
        ctx.Flush();
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  poller.join();
  EXPECT_EQ(failures.load(), 0);

  // The final quiescent ring still yields only well-formed traces.
  for (const auto& trace : recorder->CollectTraces(16)) {
    ExpectWellFormed(trace);
  }
}

}  // namespace
}  // namespace wdsparql
