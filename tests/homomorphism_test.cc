#include <gtest/gtest.h>

#include "hom/homomorphism.h"
#include "rdf/generator.h"
#include "rdf/graph.h"
#include "support/testlib.h"

namespace wdsparql {
namespace {

class HomomorphismTest : public ::testing::Test {
 protected:
  TermId V(const char* name) { return pool_.InternVariable(name); }
  TermId I(const char* name) { return pool_.InternIri(name); }

  TermPool pool_;
};

TEST_F(HomomorphismTest, EmptySourceAlwaysMaps) {
  TripleSet source, target;
  target.Insert(Triple(I("a"), I("p"), I("b")));
  EXPECT_TRUE(HasHomomorphism(source, {}, target));
}

TEST_F(HomomorphismTest, SingleTripleMatch) {
  TripleSet source, target;
  source.Insert(Triple(V("x"), I("p"), V("y")));
  target.Insert(Triple(I("a"), I("p"), I("b")));
  auto h = FindHomomorphism(source, {}, target);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(V("x")), I("a"));
  EXPECT_EQ(h->at(V("y")), I("b"));
}

TEST_F(HomomorphismTest, NoMatchOnWrongPredicate) {
  TripleSet source, target;
  source.Insert(Triple(V("x"), I("p"), V("y")));
  target.Insert(Triple(I("a"), I("q"), I("b")));
  EXPECT_FALSE(HasHomomorphism(source, {}, target));
}

TEST_F(HomomorphismTest, ConstantsMustMatchThemselves) {
  TripleSet source, target;
  source.Insert(Triple(I("a"), I("p"), V("y")));
  target.Insert(Triple(I("b"), I("p"), I("c")));
  EXPECT_FALSE(HasHomomorphism(source, {}, target));
  target.Insert(Triple(I("a"), I("p"), I("d")));
  EXPECT_TRUE(HasHomomorphism(source, {}, target));
}

TEST_F(HomomorphismTest, FixedAssignmentIsRespected) {
  TripleSet source, target;
  source.Insert(Triple(V("x"), I("p"), V("y")));
  target.Insert(Triple(I("a"), I("p"), I("b")));
  target.Insert(Triple(I("c"), I("p"), I("d")));
  VarAssignment fixed;
  fixed[V("x")] = I("c");
  auto h = FindHomomorphism(source, fixed, target);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(V("y")), I("d"));
  fixed[V("x")] = I("b");
  EXPECT_FALSE(HasHomomorphism(source, fixed, target));
}

TEST_F(HomomorphismTest, PathIntoCycleWrapsAround) {
  // A directed path of length 4 maps into a directed 3-cycle.
  TripleSet source;
  for (int i = 0; i < 4; ++i) {
    source.Insert(Triple(V(("v" + std::to_string(i)).c_str()), I("e"),
                         V(("v" + std::to_string(i + 1)).c_str())));
  }
  RdfGraph cycle(&pool_);
  GenerateCycleGraph(3, "e", &cycle);
  EXPECT_TRUE(HasHomomorphism(source, {}, cycle.triples()));
}

TEST_F(HomomorphismTest, OddCycleIntoEvenCycleFails) {
  // A directed 3-cycle cannot map into a directed 4-cycle.
  TripleSet source;
  for (int i = 0; i < 3; ++i) {
    source.Insert(Triple(V(("c" + std::to_string(i)).c_str()), I("e"),
                         V(("c" + std::to_string((i + 1) % 3)).c_str())));
  }
  RdfGraph cycle4(&pool_);
  GenerateCycleGraph(4, "e", &cycle4);
  EXPECT_FALSE(HasHomomorphism(source, {}, cycle4.triples()));
  RdfGraph cycle3(&pool_);
  GenerateCycleGraph(3, "e", &cycle3);
  EXPECT_TRUE(HasHomomorphism(source, {}, cycle3.triples()));
}

TEST_F(HomomorphismTest, TriangleIntoEncodedGraphIsCliqueDetection) {
  // K3 as a t-graph (symmetric edges) maps into an encoded undirected
  // graph iff the graph has a triangle.
  auto triangle_tgraph = [&]() {
    TripleSet s;
    const char* names[3] = {"t0", "t1", "t2"};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i != j) s.Insert(Triple(V(names[i]), I("e"), V(names[j])));
      }
    }
    return s;
  };
  UndirectedGraph with_triangle(4);
  with_triangle.AddEdge(0, 1);
  with_triangle.AddEdge(1, 2);
  with_triangle.AddEdge(0, 2);
  with_triangle.AddEdge(2, 3);
  RdfGraph g1(&pool_);
  EncodeUndirectedGraph(with_triangle, "e", "u", &g1);
  EXPECT_TRUE(HasHomomorphism(triangle_tgraph(), {}, g1.triples()));

  UndirectedGraph no_triangle = UndirectedGraph::Cycle(5);
  RdfGraph g2(&pool_);
  EncodeUndirectedGraph(no_triangle, "e", "w", &g2);
  EXPECT_FALSE(HasHomomorphism(triangle_tgraph(), {}, g2.triples()));
}

TEST_F(HomomorphismTest, BannedImageForcesDifferentTarget) {
  TripleSet source, target;
  source.Insert(Triple(V("x"), I("p"), V("x")));
  target.Insert(Triple(I("a"), I("p"), I("a")));
  target.Insert(Triple(I("b"), I("p"), I("b")));
  HomOptions options;
  options.banned_image.insert(I("a"));
  auto h = FindHomomorphism(source, {}, target, options);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(V("x")), I("b"));
  options.banned_image.insert(I("b"));
  EXPECT_FALSE(HasHomomorphism(source, {}, target, options));
}

TEST_F(HomomorphismTest, EnumerationFindsAllSolutions) {
  TripleSet source;
  source.Insert(Triple(V("x"), I("p"), V("y")));
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("a", "p", "c");
  g.Insert("d", "p", "e");
  int count = 0;
  EnumerateHomomorphisms(source, {}, g.triples(), [&](const VarAssignment&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 3);
}

TEST_F(HomomorphismTest, EnumerationEarlyStop) {
  TripleSet source;
  source.Insert(Triple(V("x"), I("p"), V("y")));
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("a", "p", "c");
  int count = 0;
  EnumerateHomomorphisms(source, {}, g.triples(), [&](const VarAssignment&) {
    ++count;
    return false;
  });
  EXPECT_EQ(count, 1);
}

TEST_F(HomomorphismTest, NodeBudgetReportsExhaustion) {
  // A large unsatisfiable instance with a tiny budget.
  TripleSet source;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i != j) {
        source.Insert(Triple(V(("k" + std::to_string(i)).c_str()), I("e"),
                             V(("k" + std::to_string(j)).c_str())));
      }
    }
  }
  UndirectedGraph host = GenerateErdosRenyi(12, 0.5, 3);
  RdfGraph g(&pool_);
  EncodeUndirectedGraph(host, "e", "u", &g);
  HomOptions options;
  bool exhausted = false;
  options.max_nodes = 3;
  options.budget_exhausted = &exhausted;
  FindHomomorphism(source, {}, g.triples(), options);
  EXPECT_TRUE(exhausted);
}

TEST_F(HomomorphismTest, ApplyAssignmentOnTripleSet) {
  TripleSet source;
  source.Insert(Triple(V("x"), I("p"), V("y")));
  source.Insert(Triple(V("y"), I("p"), V("x")));
  VarAssignment h;
  h[V("x")] = I("a");
  h[V("y")] = I("a");
  TripleSet image = ApplyAssignment(h, source);
  EXPECT_EQ(image.size(), 1u);  // Both triples collapse to (a p a).
  EXPECT_TRUE(image.Contains(Triple(I("a"), I("p"), I("a"))));
}

TEST_F(HomomorphismTest, IdentityOnBuildsIdentity) {
  VarAssignment id = IdentityOn({V("x"), V("y")});
  EXPECT_EQ(id.size(), 2u);
  EXPECT_EQ(id.at(V("x")), V("x"));
}

TEST_F(HomomorphismTest, PropagationLevelsAgree) {
  // The three propagation strategies are pure optimisations: identical
  // answers on every instance.
  Rng rng(20240613);
  for (int trial = 0; trial < 30; ++trial) {
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 5, 18, 2, &g);
    TripleSet source;
    int triples = 2 + static_cast<int>(rng.NextBounded(4));
    for (int i = 0; i < triples; ++i) {
      source.Insert(
          Triple(V(("pl" + std::to_string(rng.NextBounded(4))).c_str()),
                 I(("p" + std::to_string(rng.NextBounded(2))).c_str()),
                 V(("pl" + std::to_string(rng.NextBounded(4))).c_str())));
    }
    HomOptions none, forward, full;
    none.propagation = PropagationLevel::kNone;
    forward.propagation = PropagationLevel::kForward;
    full.propagation = PropagationLevel::kFull;
    bool a = HasHomomorphism(source, {}, g.triples(), none);
    bool b = HasHomomorphism(source, {}, g.triples(), forward);
    bool c = HasHomomorphism(source, {}, g.triples(), full);
    EXPECT_EQ(a, b) << "trial " << trial;
    EXPECT_EQ(b, c) << "trial " << trial;
  }
}

TEST_F(HomomorphismTest, PropagationLevelsAgreeOnEnumerationCount) {
  // Enumeration through the default engine matches a kNone-based count
  // via repeated find-and-ban... simpler: count with full vs none by
  // collecting solutions through FindHomomorphism's enumeration API.
  TripleSet source;
  source.Insert(Triple(V("e1"), I("p"), V("e2")));
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("b", "p", "c");
  g.Insert("c", "p", "a");
  int count = 0;
  EnumerateHomomorphisms(source, {}, g.triples(), [&](const VarAssignment&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 3);
}

TEST_F(HomomorphismTest, NodesExploredIsReported) {
  TripleSet source;
  source.Insert(Triple(V("n1"), I("p"), V("n2")));
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  HomOptions options;
  uint64_t nodes = 0;
  options.nodes_explored = &nodes;
  EXPECT_TRUE(HasHomomorphism(source, {}, g.triples(), options));
  EXPECT_GT(nodes, 0u);
}

TEST_F(HomomorphismTest, CompositionProperty) {
  // Random S -> G found homomorphisms really are homomorphisms.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    RdfGraph g(&pool_);
    testlib::SmallWorkloadGraph(&rng, 5, 20, 2, &g);
    TripleSet source;
    for (int i = 0; i < 4; ++i) {
      TermId s = pool_.InternVariable("h" + std::to_string(rng.NextBounded(3)));
      TermId o = pool_.InternVariable("h" + std::to_string(rng.NextBounded(3)));
      TermId p = pool_.InternIri("p" + std::to_string(rng.NextBounded(2)));
      source.Insert(Triple(s, p, o));
    }
    auto h = FindHomomorphism(source, {}, g.triples());
    if (!h.has_value()) continue;
    for (const Triple& t : source.triples()) {
      EXPECT_TRUE(g.triples().Contains(ApplyAssignment(*h, t)));
    }
  }
}

}  // namespace
}  // namespace wdsparql
