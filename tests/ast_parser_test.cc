#include <gtest/gtest.h>

#include "sparql/ast.h"
#include "sparql/parser.h"

namespace wdsparql {
namespace {

TEST(AstTest, TripleLeaf) {
  TermPool pool;
  Triple t(pool.InternVariable("x"), pool.InternIri("p"), pool.InternVariable("y"));
  PatternPtr leaf = GraphPattern::MakeTriple(t);
  EXPECT_EQ(leaf->kind(), PatternKind::kTriple);
  EXPECT_EQ(leaf->triple(), t);
  EXPECT_EQ(leaf->NumTriples(), 1);
  EXPECT_EQ(leaf->NumNodes(), 1);
  EXPECT_TRUE(leaf->IsUnionFree());
  EXPECT_EQ(leaf->Variables().size(), 2u);
}

TEST(AstTest, BinaryComposition) {
  TermPool pool;
  TermId x = pool.InternVariable("x"), p = pool.InternIri("p");
  PatternPtr a = GraphPattern::MakeTriple(Triple(x, p, x));
  PatternPtr b = GraphPattern::MakeTriple(Triple(x, p, pool.InternVariable("y")));
  PatternPtr land = GraphPattern::MakeAnd(a, b);
  PatternPtr opt = GraphPattern::MakeOpt(land, b);
  PatternPtr uni = GraphPattern::MakeUnion(opt, a);
  EXPECT_EQ(uni->kind(), PatternKind::kUnion);
  EXPECT_EQ(uni->NumTriples(), 4);
  EXPECT_FALSE(uni->IsUnionFree());
  EXPECT_TRUE(opt->IsUnionFree());
  EXPECT_EQ(uni->Variables().size(), 2u);
}

TEST(AstTest, FoldHelpers) {
  TermPool pool;
  TermId x = pool.InternVariable("x"), p = pool.InternIri("p");
  std::vector<PatternPtr> leaves;
  for (int i = 0; i < 3; ++i) {
    leaves.push_back(
        GraphPattern::MakeTriple(Triple(x, p, pool.InternIri("o" + std::to_string(i)))));
  }
  PatternPtr all_and = GraphPattern::MakeAndAll(leaves);
  EXPECT_EQ(all_and->NumTriples(), 3);
  EXPECT_EQ(all_and->kind(), PatternKind::kAnd);
  PatternPtr all_union = GraphPattern::MakeUnionAll(leaves);
  EXPECT_EQ(all_union->kind(), PatternKind::kUnion);
}

TEST(ParserTest, ParsesTriplePattern) {
  TermPool pool;
  auto result = ParsePattern("(?x p ?y)", &pool);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PatternPtr& p = result.value();
  EXPECT_EQ(p->kind(), PatternKind::kTriple);
  EXPECT_EQ(p->triple().subject, pool.InternVariable("x"));
  EXPECT_EQ(p->triple().predicate, pool.InternIri("p"));
  EXPECT_EQ(p->triple().object, pool.InternVariable("y"));
}

TEST(ParserTest, ParsesQuotedIris) {
  TermPool pool;
  auto result = ParsePattern("(<http://a b> p ?y)", &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->triple().subject, pool.InternIri("http://a b"));
}

TEST(ParserTest, OperatorPrecedence) {
  TermPool pool;
  // AND binds tighter than OPT, OPT tighter than UNION.
  auto result = ParsePattern("(?x p ?y) AND (?y p ?z) OPT (?z p ?w) UNION (?x p ?x)",
                             &pool);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PatternPtr& p = result.value();
  ASSERT_EQ(p->kind(), PatternKind::kUnion);
  ASSERT_EQ(p->left()->kind(), PatternKind::kOpt);
  EXPECT_EQ(p->left()->left()->kind(), PatternKind::kAnd);
  EXPECT_EQ(p->right()->kind(), PatternKind::kTriple);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  TermPool pool;
  auto result = ParsePattern("(?x p ?y) AND ((?y p ?z) UNION (?z p ?w))", &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->kind(), PatternKind::kAnd);
  EXPECT_EQ(result.value()->right()->kind(), PatternKind::kUnion);
}

TEST(ParserTest, LeftAssociativity) {
  TermPool pool;
  auto result = ParsePattern("(?a p ?b) OPT (?b p ?c) OPT (?c p ?d)", &pool);
  ASSERT_TRUE(result.ok());
  const PatternPtr& p = result.value();
  ASSERT_EQ(p->kind(), PatternKind::kOpt);
  // ((a OPT b) OPT c): the left operand is itself an OPT.
  EXPECT_EQ(p->left()->kind(), PatternKind::kOpt);
  EXPECT_EQ(p->right()->kind(), PatternKind::kTriple);
}

TEST(ParserTest, OptionalKeywordAlias) {
  TermPool pool;
  auto result = ParsePattern("(?x p ?y) OPTIONAL (?y q ?z)", &pool);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->kind(), PatternKind::kOpt);
}

TEST(ParserTest, PaperExample1) {
  TermPool pool;
  auto result = ParsePattern(
      "((?x p ?y) OPT (?z q ?x)) OPT ((?y r ?o1) AND (?o1 r ?o2))", &pool);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PatternPtr& p1 = result.value();
  EXPECT_EQ(p1->kind(), PatternKind::kOpt);
  EXPECT_EQ(p1->NumTriples(), 4);
  EXPECT_EQ(p1->Variables().size(), 5u);
}

TEST(ParserTest, RoundTripThroughToString) {
  TermPool pool;
  const char* text = "(((?x p ?y) OPT (?z q ?x)) UNION ((?x p ?y) AND (?y r ?w)))";
  auto first = ParsePattern(text, &pool);
  ASSERT_TRUE(first.ok());
  std::string printed = first.value()->ToString(pool);
  auto second = ParsePattern(printed, &pool);
  ASSERT_TRUE(second.ok()) << "reparse failed on: " << printed;
  EXPECT_EQ(second.value()->ToString(pool), printed);
}

TEST(ParserTest, ErrorOnGarbage) {
  TermPool pool;
  EXPECT_FALSE(ParsePattern("", &pool).ok());
  EXPECT_FALSE(ParsePattern("(?x p)", &pool).ok());
  EXPECT_FALSE(ParsePattern("(?x p ?y", &pool).ok());
  EXPECT_FALSE(ParsePattern("(?x p ?y) AND", &pool).ok());
  EXPECT_FALSE(ParsePattern("(?x p ?y) (?y p ?z)", &pool).ok());
  EXPECT_FALSE(ParsePattern("(?x p ?y) FOO (?y p ?z)", &pool).ok());
  EXPECT_FALSE(ParsePattern("(? p ?y)", &pool).ok());
  EXPECT_FALSE(ParsePattern("[?x p ?y]", &pool).ok());
}

TEST(ParserTest, ErrorMentionsOffset) {
  TermPool pool;
  auto result = ParsePattern("(?x p ?y) AND", &pool);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos);
}

TEST(PatternKindTest, Names) {
  EXPECT_STREQ(PatternKindToString(PatternKind::kAnd), "AND");
  EXPECT_STREQ(PatternKindToString(PatternKind::kOpt), "OPT");
  EXPECT_STREQ(PatternKindToString(PatternKind::kUnion), "UNION");
}

}  // namespace
}  // namespace wdsparql
