#include <gtest/gtest.h>

#include "hom/treewidth.h"
#include "ptree/tgraph.h"
#include "rdf/generator.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

TEST(TreewidthTest, EmptyAndEdgelessGraphs) {
  EXPECT_EQ(ComputeTreewidth(UndirectedGraph(0)).value(), 0);
  EXPECT_EQ(ComputeTreewidth(UndirectedGraph(5)).value(), 0);
}

TEST(TreewidthTest, SingleEdge) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1);
  EXPECT_EQ(ComputeTreewidth(g).value(), 1);
}

TEST(TreewidthTest, TreesHaveWidthOne) {
  // A star and a path.
  UndirectedGraph star(6);
  for (int i = 1; i < 6; ++i) star.AddEdge(0, i);
  EXPECT_EQ(ComputeTreewidth(star).value(), 1);
  EXPECT_EQ(ComputeTreewidth(UndirectedGraph::Path(10)).value(), 1);
}

TEST(TreewidthTest, CyclesHaveWidthTwo) {
  for (int n = 3; n <= 8; ++n) {
    EXPECT_EQ(ComputeTreewidth(UndirectedGraph::Cycle(n)).value(), 2) << "C_" << n;
  }
}

TEST(TreewidthTest, CliquesHaveWidthKMinusOne) {
  for (int k = 2; k <= 8; ++k) {
    EXPECT_EQ(ComputeTreewidth(UndirectedGraph::Complete(k)).value(), k - 1)
        << "K_" << k;
  }
}

TEST(TreewidthTest, GridsHaveWidthMinDimension) {
  EXPECT_EQ(ComputeTreewidth(UndirectedGraph::Grid(2, 2)).value(), 2);
  EXPECT_EQ(ComputeTreewidth(UndirectedGraph::Grid(2, 5)).value(), 2);
  EXPECT_EQ(ComputeTreewidth(UndirectedGraph::Grid(3, 3)).value(), 3);
  EXPECT_EQ(ComputeTreewidth(UndirectedGraph::Grid(3, 5)).value(), 3);
  EXPECT_EQ(ComputeTreewidth(UndirectedGraph::Grid(4, 4)).value(), 4);
}

TEST(TreewidthTest, DisconnectedGraphTakesMax) {
  // K4 plus an isolated path: width 3.
  UndirectedGraph g(8);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.AddEdge(i, j);
  }
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 7);
  EXPECT_EQ(ComputeTreewidth(g).value(), 3);
}

TEST(TreewidthTest, EliminationWidthMatchesValue) {
  UndirectedGraph g = UndirectedGraph::Grid(3, 3);
  TreewidthResult result = ComputeTreewidth(g);
  ASSERT_TRUE(result.exact());
  EXPECT_EQ(EliminationWidth(g, result.elimination_order), result.value());
}

TEST(TreewidthTest, DecompositionFromOrderIsValid) {
  for (const UndirectedGraph& g :
       {UndirectedGraph::Grid(3, 4), UndirectedGraph::Cycle(7),
        UndirectedGraph::Complete(5), UndirectedGraph::Path(6)}) {
    TreewidthResult result = ComputeTreewidth(g);
    TreeDecomposition decomposition = DecompositionFromOrder(g, result.elimination_order);
    EXPECT_TRUE(IsValidTreeDecomposition(g, decomposition));
    EXPECT_EQ(decomposition.Width(), result.upper);
  }
}

TEST(TreewidthTest, DecompositionOfDisconnectedGraph) {
  UndirectedGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  TreewidthResult result = ComputeTreewidth(g);
  TreeDecomposition decomposition = DecompositionFromOrder(g, result.elimination_order);
  EXPECT_TRUE(IsValidTreeDecomposition(g, decomposition));
}

TEST(TreewidthTest, RandomGraphBoundsAreConsistent) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    UndirectedGraph g = GenerateErdosRenyi(12, 0.25, seed);
    TreewidthResult result = ComputeTreewidth(g);
    EXPECT_LE(result.lower, result.upper);
    EXPECT_TRUE(result.exact()) << "n=12 should hit the exact DP";
    EXPECT_EQ(EliminationWidth(g, result.elimination_order), result.upper);
    EXPECT_GE(result.lower, g.Degeneracy() == 0 ? 0 : 1);
  }
}

TEST(TreewidthTest, HeuristicOnlyAboveDpThreshold) {
  TreewidthOptions options;
  options.exact_dp_max_vertices = 4;  // Force heuristic path.
  UndirectedGraph g = UndirectedGraph::Grid(3, 3);
  TreewidthResult result = ComputeTreewidth(g, options);
  EXPECT_GE(result.upper, 3);
  EXPECT_LE(result.lower, result.upper);
}

// --- Generalised t-graph treewidth (tw and ctw, Example 3) -------------

class TGraphWidthTest : public ::testing::Test {
 protected:
  TermPool pool_;
};

TEST_F(TGraphWidthTest, Example3SHasCtwKMinus1) {
  for (int k = 2; k <= 5; ++k) {
    GeneralizedTGraph s = MakeExample3S(&pool_, k);
    EXPECT_EQ(TreewidthOf(s).value(), k - 1) << "tw, k=" << k;
    EXPECT_EQ(CoreTreewidthOf(s).value(), k - 1) << "ctw, k=" << k;
  }
}

TEST_F(TGraphWidthTest, Example3SPrimeSeparatesTwFromCtw) {
  for (int k = 3; k <= 5; ++k) {
    GeneralizedTGraph s_prime = MakeExample3SPrime(&pool_, k);
    EXPECT_EQ(TreewidthOf(s_prime).value(), k - 1) << "tw, k=" << k;
    EXPECT_EQ(CoreTreewidthOf(s_prime).value(), 1) << "ctw, k=" << k;
  }
}

TEST_F(TGraphWidthTest, DistinguishedVariablesLeaveGaifman) {
  // A triangle with one distinguished corner has Gaifman graph = one edge.
  TermId a = pool_.InternVariable("a"), b = pool_.InternVariable("b"),
         c = pool_.InternVariable("c");
  TermId e = pool_.InternIri("e");
  TripleSet s;
  s.Insert(Triple(a, e, b));
  s.Insert(Triple(b, e, c));
  s.Insert(Triple(c, e, a));
  GeneralizedTGraph g(s, {a});
  std::vector<TermId> vars;
  UndirectedGraph gaifman = GaifmanGraph(g, &vars);
  EXPECT_EQ(gaifman.NumVertices(), 2);
  EXPECT_EQ(gaifman.NumEdges(), 1);
  EXPECT_EQ(TreewidthOf(g).value(), 1);
}

TEST_F(TGraphWidthTest, PaperFloorsTreewidthAtOne) {
  // All variables distinguished: Gaifman graph empty, tw := 1.
  TermId x = pool_.InternVariable("x");
  TripleSet s;
  s.Insert(Triple(x, pool_.InternIri("p"), x));
  GeneralizedTGraph g(s, {x});
  EXPECT_EQ(TreewidthOf(g).value(), 1);
  EXPECT_EQ(CoreTreewidthOf(g).value(), 1);
}

TEST_F(TGraphWidthTest, RigidGridGaifmanIsGrid) {
  GeneralizedTGraph grid = MakeRigidGrid(&pool_, 3, 3);
  std::vector<TermId> vars;
  UndirectedGraph gaifman = GaifmanGraph(grid, &vars);
  EXPECT_EQ(gaifman.NumVertices(), 9);
  EXPECT_EQ(gaifman.NumEdges(), 12);
  EXPECT_EQ(TreewidthOf(grid).value(), 3);
  // Rigid grids are cores: ctw == tw.
  EXPECT_EQ(CoreTreewidthOf(grid).value(), 3);
}

}  // namespace
}  // namespace wdsparql
