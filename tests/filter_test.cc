#include <gtest/gtest.h>

#include <algorithm>

#include "ptree/forest.h"
#include "rdf/generator.h"
#include "sparql/filter.h"
#include "sparql/parser.h"
#include "sparql/semantics.h"
#include "sparql/well_designed.h"
#include "support/testlib.h"
#include "util/combinatorics.h"

namespace wdsparql {
namespace {

class FilterTest : public ::testing::Test {
 protected:
  PatternPtr Parse(const char* text) {
    auto result = ParsePattern(text, &pool_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  }

  TermPool pool_;
};

TEST_F(FilterTest, ConditionSatisfaction) {
  TermId x = pool_.InternVariable("x"), y = pool_.InternVariable("y");
  TermId a = pool_.InternIri("a"), b = pool_.InternIri("b");
  Mapping mu;
  mu.Bind(x, a);
  mu.Bind(y, b);

  FilterCondition eq{{FilterAtom{x, y, FilterOp::kEquals}}};
  FilterCondition neq{{FilterAtom{x, y, FilterOp::kNotEquals}}};
  FilterCondition const_eq{{FilterAtom{x, a, FilterOp::kEquals}}};
  EXPECT_FALSE(eq.Satisfied(mu));
  EXPECT_TRUE(neq.Satisfied(mu));
  EXPECT_TRUE(const_eq.Satisfied(mu));

  // Unbound variable: the atom errors and the filter eliminates.
  Mapping partial;
  partial.Bind(x, a);
  EXPECT_FALSE(eq.Satisfied(partial));
  EXPECT_FALSE(neq.Satisfied(partial));
}

TEST_F(FilterTest, ConditionVariablesAndToString) {
  TermId x = pool_.InternVariable("x"), y = pool_.InternVariable("y");
  TermId a = pool_.InternIri("a");
  FilterCondition c{{FilterAtom{x, y, FilterOp::kNotEquals},
                     FilterAtom{y, a, FilterOp::kEquals}}};
  EXPECT_EQ(c.Variables(), (std::vector<TermId>{x, y}));
  EXPECT_EQ(c.ToString(pool_), "?x != ?y AND ?y = a");
}

TEST_F(FilterTest, ParserRoundTrip) {
  PatternPtr p = Parse("(?x p ?y) FILTER (?x != ?y AND ?y = b)");
  ASSERT_EQ(p->kind(), PatternKind::kFilter);
  EXPECT_EQ(p->condition().atoms.size(), 2u);
  EXPECT_EQ(p->condition().atoms[0].op, FilterOp::kNotEquals);
  // Re-parse the printed form.
  std::string printed = p->ToString(pool_);
  auto second = ParsePattern(printed, &pool_);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_EQ(second.value()->ToString(pool_), printed);
}

TEST_F(FilterTest, ParserErrors) {
  EXPECT_FALSE(ParsePattern("(?x p ?y) FILTER ?x != ?y", &pool_).ok());
  EXPECT_FALSE(ParsePattern("(?x p ?y) FILTER (?x ?y)", &pool_).ok());
  EXPECT_FALSE(ParsePattern("(?x p ?y) FILTER (?x !=)", &pool_).ok());
  EXPECT_FALSE(ParsePattern("(?x p ?y) FILTER (?x != ?y", &pool_).ok());
}

TEST_F(FilterTest, EvaluationFiltersAnswers) {
  RdfGraph g(&pool_);
  g.Insert("a", "p", "a");
  g.Insert("a", "p", "b");
  g.Insert("b", "p", "c");

  auto all = Evaluate(*Parse("(?x p ?y)"), g);
  EXPECT_EQ(all.size(), 3u);
  auto distinct = Evaluate(*Parse("(?x p ?y) FILTER (?x != ?y)"), g);
  EXPECT_EQ(distinct.size(), 2u);
  auto pinned = Evaluate(*Parse("(?x p ?y) FILTER (?x = a)"), g);
  EXPECT_EQ(pinned.size(), 2u);
  auto both = Evaluate(*Parse("(?x p ?y) FILTER (?x = a AND ?x != ?y)"), g);
  EXPECT_EQ(both.size(), 1u);
}

TEST_F(FilterTest, FilterOverOptKeepsUnboundSemantics) {
  // FILTER on a variable bound only in the optional side eliminates the
  // partial answers (unbound -> error -> false), the standard subtlety.
  RdfGraph g(&pool_);
  g.Insert("a", "p", "b");
  g.Insert("c", "p", "d");
  g.Insert("b", "q", "e");
  auto answers = Evaluate(*Parse("((?x p ?y) OPT (?y q ?z)) FILTER (?z != e)"), g);
  EXPECT_TRUE(answers.empty());  // Extended answer has z = e; partial has no z.
  auto keep = Evaluate(*Parse("((?x p ?y) OPT (?y q ?z)) FILTER (?z = e)"), g);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0].size(), 3u);
}

TEST_F(FilterTest, SafetyIsPartOfWellDesignedness) {
  // vars(R) must be contained in the filtered subpattern.
  PatternPtr safe = Parse("(?x p ?y) FILTER (?x != ?y)");
  EXPECT_TRUE(CheckWellDesigned(safe, pool_).ok());

  PatternPtr unsafe = Parse("(?x p ?y) FILTER (?x != ?z)");
  Status status = CheckWellDesigned(unsafe, pool_);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unsafe"), std::string::npos);
}

TEST_F(FilterTest, FilterVariableLeakIsDetected) {
  // ?z appears optionally and then in a filter outside the OPT: not well
  // designed (the filter is an occurrence site).
  PatternPtr bad =
      Parse("(((?x p ?y) OPT (?y q ?z)) AND (?x p ?w)) FILTER (?w != ?z)");
  EXPECT_FALSE(IsWellDesigned(bad, pool_));
  // The same filter *inside* the OPT's scope is fine.
  PatternPtr good = Parse("(?x p ?y) OPT ((?y q ?z) FILTER (?z != ?y))");
  EXPECT_TRUE(IsWellDesigned(good, pool_));
}

TEST_F(FilterTest, ForestPipelineRejectsFilter) {
  // FILTER is outside the classified fragment: wdpf refuses, with a
  // pointer to the right evaluator.
  PatternPtr p = Parse("(?x p ?y) FILTER (?x != ?y)");
  auto forest = BuildPatternForest(p, pool_);
  ASSERT_FALSE(forest.ok());
  EXPECT_EQ(forest.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FilterTest, AllDistinctBuildsQuadraticAtoms) {
  std::vector<TermId> vars = {pool_.InternVariable("a"), pool_.InternVariable("b"),
                              pool_.InternVariable("c")};
  FilterCondition condition = AllDistinct(vars);
  EXPECT_EQ(condition.atoms.size(), 3u);
  for (const FilterAtom& atom : condition.atoms) {
    EXPECT_EQ(atom.op, FilterOp::kNotEquals);
  }
}

TEST_F(FilterTest, Section5EmbeddingConnection) {
  // Section 5: AND+FILTER expresses CQs with inequalities, i.e. graph
  // *embedding*. A directed path query of length L with an all-distinct
  // filter finds exactly the induced directed paths on L+1 distinct
  // vertices — homomorphism alone would also accept folded walks.
  const int kLength = 3;
  std::vector<TermId> path_vars;
  std::vector<PatternPtr> leaves;
  TermId e = pool_.InternIri("edge");
  for (int i = 0; i <= kLength; ++i) {
    path_vars.push_back(pool_.InternVariable("v" + std::to_string(i)));
  }
  for (int i = 0; i < kLength; ++i) {
    leaves.push_back(
        GraphPattern::MakeTriple(Triple(path_vars[i], e, path_vars[i + 1])));
  }
  PatternPtr hom_query = GraphPattern::MakeAndAll(leaves);
  PatternPtr emb_query = GraphPattern::MakeFilter(hom_query, AllDistinct(path_vars));

  // A directed triangle: homomorphic walks of any length exist, but no
  // simple (injective) path on 4 distinct vertices does.
  RdfGraph triangle(&pool_);
  GenerateCycleGraph(3, "edge", &triangle);
  EXPECT_FALSE(Evaluate(*hom_query, triangle).empty());
  EXPECT_TRUE(Evaluate(*emb_query, triangle).empty());

  // A genuine path of length 3 satisfies both.
  RdfGraph path(&pool_);
  GeneratePathGraph(3, "edge", &path);
  EXPECT_FALSE(Evaluate(*emb_query, path).empty());
}

TEST_F(FilterTest, EmbeddingMatchesBruteForceOnRandomGraphs) {
  // EMB(P3) via FILTER vs. a brute-force injective search.
  TermId e = pool_.InternIri("edge");
  std::vector<TermId> vars;
  std::vector<PatternPtr> leaves;
  for (int i = 0; i <= 2; ++i) vars.push_back(pool_.InternVariable("w" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) {
    leaves.push_back(GraphPattern::MakeTriple(Triple(vars[i], e, vars[i + 1])));
  }
  PatternPtr emb = GraphPattern::MakeFilter(GraphPattern::MakeAndAll(leaves),
                                            AllDistinct(vars));
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    UndirectedGraph h = GenerateErdosRenyi(7, 0.25, seed);
    RdfGraph g(&pool_);
    EncodeUndirectedGraph(h, "edge", "u", &g);
    // Brute force: an injective undirected path on 3 vertices.
    bool expected = false;
    for (int a = 0; a < 7 && !expected; ++a) {
      for (int b = 0; b < 7 && !expected; ++b) {
        for (int c = 0; c < 7 && !expected; ++c) {
          if (a != b && b != c && a != c && h.HasEdge(a, b) && h.HasEdge(b, c)) {
            expected = true;
          }
        }
      }
    }
    EXPECT_EQ(!Evaluate(*emb, g).empty(), expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wdsparql
