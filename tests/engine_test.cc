#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/dictionary.h"
#include "engine/indexed_store.h"
#include "engine/join.h"
#include "engine/query_engine.h"
#include "hom/homomorphism.h"
#include "rdf/generator.h"
#include "rdf/graph.h"
#include "rdf/scan.h"
#include "sparql/semantics.h"
#include "support/testlib.h"
#include "util/rng.h"

namespace wdsparql {
namespace {

// ---------------------------------------------------------------------
// Dictionary
// ---------------------------------------------------------------------

TEST(DictionaryTest, RoundTripsEveryTermOfTheSet) {
  TermPool pool;
  RdfGraph graph(&pool);
  graph.Insert("a", "p", "b");
  graph.Insert("b", "q", "c");
  Dictionary dict = Dictionary::Build(graph.triples());
  EXPECT_EQ(dict.size(), 5u);  // a, b, c, p, q.
  for (TermId t : graph.triples().AllTerms()) {
    DataId id = dict.Encode(t);
    ASSERT_NE(id, kNoDataId);
    EXPECT_EQ(dict.Decode(id), t);
  }
}

TEST(DictionaryTest, AbsentTermEncodesToNoId) {
  TermPool pool;
  RdfGraph graph(&pool);
  graph.Insert("a", "p", "b");
  TermId stranger = pool.InternIri("not-in-graph");
  Dictionary dict = Dictionary::Build(graph.triples());
  EXPECT_EQ(dict.Encode(stranger), kNoDataId);
}

TEST(DictionaryTest, EncodingPreservesTermOrder) {
  TermPool pool;
  RdfGraph graph(&pool);
  graph.Insert("c", "p", "a");
  graph.Insert("a", "q", "b");
  Dictionary dict = Dictionary::Build(graph.triples());
  for (std::size_t i = 1; i < dict.size(); ++i) {
    EXPECT_LT(dict.Decode(static_cast<DataId>(i - 1)), dict.Decode(static_cast<DataId>(i)));
  }
}

// ---------------------------------------------------------------------
// IndexedStore: permutation-range scans against the naive filter.
// ---------------------------------------------------------------------

class IndexedStoreScanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexedStoreScanTest, EveryBoundMaskMatchesNaiveFilter) {
  TermPool pool;
  RdfGraph graph(&pool);
  RandomGraphOptions options;
  options.num_nodes = 12;
  options.num_predicates = 3;
  options.num_triples = 120;
  options.seed = GetParam();
  GenerateRandomGraph(options, &graph);
  IndexedStore store = IndexedStore::Build(graph.triples());
  ASSERT_EQ(store.size(), graph.size());

  Rng rng(GetParam() ^ 0xabc);
  std::vector<Triple> all = graph.triples().triples();
  for (int trial = 0; trial < 40; ++trial) {
    // Bind a random subset of positions to terms of a random triple
    // (hit-heavy) or to arbitrary pool terms (miss-heavy).
    const Triple& base = all[rng.NextBounded(static_cast<uint32_t>(all.size()))];
    Triple probe(kAnyTerm, kAnyTerm, kAnyTerm);
    int mask = static_cast<int>(rng.NextBounded(8));
    for (int pos = 0; pos < 3; ++pos) {
      if ((mask >> pos) & 1) probe.Set(pos, base[pos]);
    }

    std::vector<Triple> expected;
    for (const Triple& t : all) {
      bool match = true;
      for (int pos = 0; pos < 3; ++pos) {
        if (probe[pos] != kAnyTerm && t[pos] != probe[pos]) match = false;
      }
      if (match) expected.push_back(t);
    }
    std::sort(expected.begin(), expected.end());

    std::vector<Triple> scanned;
    store.ScanPattern(probe, [&](const Triple& t) {
      scanned.push_back(t);
      return true;
    });
    std::sort(scanned.begin(), scanned.end());
    EXPECT_EQ(scanned, expected) << "mask=" << mask;

    // The range must be exact: no post-filtering means size equality.
    EncPattern enc;
    if (store.EncodeScanPattern(probe, &enc)) {
      EXPECT_EQ(store.Scan(enc).size(), expected.size());
    } else {
      EXPECT_TRUE(expected.empty());
    }
  }
}

TEST_P(IndexedStoreScanTest, AgreesWithHashSourceOnContainsAndAllTerms) {
  TermPool pool;
  RdfGraph graph(&pool);
  RandomGraphOptions options;
  options.num_nodes = 10;
  options.num_triples = 60;
  options.seed = GetParam() ^ 0x77;
  GenerateRandomGraph(options, &graph);
  IndexedStore store = IndexedStore::Build(graph.triples());
  HashTripleSource hash(graph.triples());

  EXPECT_EQ(store.AllTerms(), hash.AllTerms());
  EXPECT_EQ(store.size(), hash.size());
  Rng rng(GetParam());
  std::vector<TermId> terms = store.AllTerms();
  for (int trial = 0; trial < 50; ++trial) {
    Triple t(terms[rng.NextBounded(static_cast<uint32_t>(terms.size()))],
             terms[rng.NextBounded(static_cast<uint32_t>(terms.size()))],
             terms[rng.NextBounded(static_cast<uint32_t>(terms.size()))]);
    EXPECT_EQ(store.Contains(t), hash.Contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedStoreScanTest, ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Join: differential against the CSP homomorphism solver.
// ---------------------------------------------------------------------

std::vector<Mapping> SortedMappings(const std::vector<VarAssignment>& assignments) {
  std::vector<Mapping> out;
  for (const VarAssignment& a : assignments) {
    Mapping mu;
    for (const auto& [var, value] : a) EXPECT_TRUE(mu.Bind(var, value));
    out.push_back(mu);
  }
  std::sort(out.begin(), out.end());
  return out;
}

class JoinDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinDifferentialTest, JoinMatchesHomomorphismEnumeration) {
  Rng rng(GetParam());
  TermPool pool;
  RdfGraph graph(&pool);
  testlib::SmallWorkloadGraph(&rng, 6, 24, 3, &graph);
  IndexedStore store = IndexedStore::Build(graph.triples());

  std::vector<TermId> nodes = graph.triples().Iris();
  for (int trial = 0; trial < 20; ++trial) {
    // Random conjunctive pattern over the graph's predicates.
    int num_vars = 1 + static_cast<int>(rng.NextBounded(3));
    std::vector<TermId> vars;
    for (int i = 0; i < num_vars; ++i) {
      vars.push_back(pool.InternVariable("j" + std::to_string(i)));
    }
    auto random_term = [&](bool allow_var) -> TermId {
      if (allow_var && rng.NextBounded(2) == 0) {
        return vars[rng.NextBounded(static_cast<uint32_t>(vars.size()))];
      }
      return nodes[rng.NextBounded(static_cast<uint32_t>(nodes.size()))];
    };
    TripleSet pattern;
    int num_triples = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < num_triples; ++i) {
      pattern.Insert(
          Triple(random_term(true), random_term(true), random_term(true)));
    }
    VarAssignment fixed;
    if (rng.NextBounded(2) == 0) {
      fixed[vars[rng.NextBounded(static_cast<uint32_t>(vars.size()))]] =
          nodes[rng.NextBounded(static_cast<uint32_t>(nodes.size()))];
    }

    std::vector<VarAssignment> join_results;
    JoinEnumerate(store.view(), pattern.triples(), fixed,
                  [&](const VarAssignment& a) {
                    join_results.push_back(a);
                    return true;
                  });
    std::vector<VarAssignment> hom_results;
    EnumerateHomomorphisms(pattern, fixed, graph.triples(),
                           [&](const VarAssignment& a) {
                             hom_results.push_back(a);
                             return true;
                           });
    EXPECT_EQ(SortedMappings(join_results), SortedMappings(hom_results))
        << "trial " << trial;
    EXPECT_EQ(JoinExists(store.view(), pattern.triples(), fixed), !hom_results.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinDifferentialTest, ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// QueryEngine facade: backends must agree byte for byte.
// ---------------------------------------------------------------------

TEST(QueryEngineTest, PrepareRejectsSyntaxErrors) {
  TermPool pool;
  RdfGraph graph(&pool);
  graph.Insert("a", "p", "b");
  QueryEngine engine(graph);
  Result<PreparedQuery> q = engine.Prepare("((?x p");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, PrepareRejectsNonWellDesignedPatterns) {
  TermPool pool;
  RdfGraph graph(&pool);
  graph.Insert("a", "p", "b");
  QueryEngine engine(graph);
  // ?y occurs in the OPT right side and outside the OPT, but not in the
  // left side: the classic non-well-designed shape.
  Result<PreparedQuery> q =
      engine.Prepare("((?x p ?x) OPT (?x q ?y)) AND (?y p ?y)");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotWellDesigned);
}

TEST(QueryEngineTest, SimpleOptQueryOnBothBackends) {
  TermPool pool;
  RdfGraph graph(&pool);
  graph.Insert("alice", "knows", "bob");
  graph.Insert("bob", "knows", "carol");
  graph.Insert("bob", "email", "bob-at-example");
  for (Backend backend : {Backend::kNaiveHash, Backend::kIndexed}) {
    QueryEngineOptions options;
    options.backend = backend;
    QueryEngine engine(graph, options);
    Result<PreparedQuery> q = engine.Prepare("(?x knows ?y) OPT (?y email ?e)");
    ASSERT_TRUE(q.ok()) << BackendToString(backend);
    std::vector<Mapping> answers = engine.Solutions(q.value());
    ASSERT_EQ(answers.size(), 2u) << BackendToString(backend);
    EXPECT_EQ(engine.Count(q.value()), 2u);
    for (const Mapping& mu : answers) {
      EXPECT_TRUE(engine.Evaluate(q.value(), mu)) << BackendToString(backend);
    }
    EXPECT_FALSE(engine.Evaluate(
        q.value(), testlib::MakeMapping(&pool, {{"x", "carol"}, {"y", "alice"}})));
  }
}

class QueryEngineDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryEngineDifferentialTest, BackendsProduceIdenticalVerdictsAndSolutions) {
  Rng rng(GetParam());
  TermPool pool;
  PatternPtr pattern = testlib::RandomWellDesignedUnion(&rng, &pool, 2);
  RdfGraph graph(&pool);
  testlib::SmallWorkloadGraph(&rng, 5, 16, 3, &graph);

  QueryEngineOptions naive_options;
  naive_options.backend = Backend::kNaiveHash;
  QueryEngine naive_engine(graph, naive_options);
  QueryEngineOptions indexed_options;
  indexed_options.backend = Backend::kIndexed;
  QueryEngine indexed_engine(graph, indexed_options);

  Result<PreparedQuery> naive_q = naive_engine.PrepareParsed(pattern);
  Result<PreparedQuery> indexed_q = indexed_engine.PrepareParsed(pattern);
  ASSERT_TRUE(naive_q.ok());
  ASSERT_TRUE(indexed_q.ok());

  // Identical enumerated solution sets (both sorted + deduplicated).
  std::vector<Mapping> naive_solutions = naive_engine.Solutions(naive_q.value());
  std::vector<Mapping> indexed_solutions = indexed_engine.Solutions(indexed_q.value());
  EXPECT_EQ(naive_solutions, indexed_solutions);

  // Both must equal the compositional set semantics.
  EXPECT_EQ(naive_solutions, Evaluate(*pattern, graph));

  // Identical wdEVAL membership verdicts on answers and near-misses.
  Rng probe_rng(GetParam() ^ 0xfeed);
  for (const Mapping& probe : testlib::MembershipProbes(pattern, graph, &probe_rng, 8)) {
    EXPECT_EQ(naive_engine.Evaluate(naive_q.value(), probe),
              indexed_engine.Evaluate(indexed_q.value(), probe))
        << probe.ToString(pool);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryEngineDifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace wdsparql
