#include <gtest/gtest.h>

#include "sparql/mapping.h"

namespace wdsparql {
namespace {

class MappingTest : public ::testing::Test {
 protected:
  TermPool pool_;
  TermId x_ = pool_.InternVariable("x");
  TermId y_ = pool_.InternVariable("y");
  TermId z_ = pool_.InternVariable("z");
  TermId a_ = pool_.InternIri("a");
  TermId b_ = pool_.InternIri("b");
  TermId c_ = pool_.InternIri("c");
};

TEST_F(MappingTest, EmptyMapping) {
  Mapping mu;
  EXPECT_TRUE(mu.empty());
  EXPECT_EQ(mu.size(), 0u);
  EXPECT_FALSE(mu.IsDefinedOn(x_));
  EXPECT_TRUE(mu.Domain().empty());
}

TEST_F(MappingTest, BindAndGet) {
  Mapping mu;
  EXPECT_TRUE(mu.Bind(x_, a_));
  EXPECT_TRUE(mu.Bind(y_, b_));
  EXPECT_EQ(mu.Get(x_), a_);
  EXPECT_EQ(mu.Get(y_), b_);
  EXPECT_FALSE(mu.Get(z_).has_value());
  EXPECT_EQ(mu.size(), 2u);
}

TEST_F(MappingTest, RebindSameValueIsOk) {
  Mapping mu;
  EXPECT_TRUE(mu.Bind(x_, a_));
  EXPECT_TRUE(mu.Bind(x_, a_));
  EXPECT_FALSE(mu.Bind(x_, b_));  // Conflict.
  EXPECT_EQ(mu.Get(x_), a_);      // Unchanged.
}

TEST_F(MappingTest, DomainIsSorted) {
  Mapping mu;
  mu.Bind(z_, c_);
  mu.Bind(x_, a_);
  std::vector<TermId> domain = mu.Domain();
  ASSERT_EQ(domain.size(), 2u);
  EXPECT_LT(domain[0], domain[1]);
}

TEST_F(MappingTest, Compatibility) {
  Mapping mu1, mu2, mu3;
  mu1.Bind(x_, a_);
  mu1.Bind(y_, b_);
  mu2.Bind(y_, b_);
  mu2.Bind(z_, c_);
  mu3.Bind(y_, c_);
  EXPECT_TRUE(Mapping::Compatible(mu1, mu2));
  EXPECT_FALSE(Mapping::Compatible(mu1, mu3));
  // Disjoint domains are always compatible.
  Mapping only_x, only_z;
  only_x.Bind(x_, a_);
  only_z.Bind(z_, a_);
  EXPECT_TRUE(Mapping::Compatible(only_x, only_z));
  // Empty mapping is compatible with everything.
  EXPECT_TRUE(Mapping::Compatible(Mapping{}, mu1));
}

TEST_F(MappingTest, UnionMergesBindings) {
  Mapping mu1, mu2;
  mu1.Bind(x_, a_);
  mu2.Bind(y_, b_);
  auto joined = Mapping::Union(mu1, mu2);
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(joined->size(), 2u);
  EXPECT_EQ(joined->Get(x_), a_);
  EXPECT_EQ(joined->Get(y_), b_);

  Mapping conflicting;
  conflicting.Bind(x_, b_);
  EXPECT_FALSE(Mapping::Union(mu1, conflicting).has_value());
}

TEST_F(MappingTest, UnionWithOverlapKeepsSharedBinding) {
  Mapping mu1, mu2;
  mu1.Bind(x_, a_);
  mu1.Bind(y_, b_);
  mu2.Bind(y_, b_);
  mu2.Bind(z_, c_);
  auto joined = Mapping::Union(mu1, mu2);
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(joined->size(), 3u);
}

TEST_F(MappingTest, Submapping) {
  Mapping small, big;
  small.Bind(x_, a_);
  big.Bind(x_, a_);
  big.Bind(y_, b_);
  EXPECT_TRUE(Mapping::IsSubmapping(small, big));
  EXPECT_FALSE(Mapping::IsSubmapping(big, small));
  EXPECT_TRUE(Mapping::IsSubmapping(Mapping{}, small));
}

TEST_F(MappingTest, RestrictedTo) {
  Mapping mu;
  mu.Bind(x_, a_);
  mu.Bind(y_, b_);
  Mapping restricted = mu.RestrictedTo({x_, z_});
  EXPECT_EQ(restricted.size(), 1u);
  EXPECT_EQ(restricted.Get(x_), a_);
}

TEST_F(MappingTest, ApplyToTriple) {
  Mapping mu;
  mu.Bind(x_, a_);
  mu.Bind(y_, b_);
  TermId p = pool_.InternIri("p");
  Triple t(x_, p, y_);
  Triple image = mu.Apply(t);
  EXPECT_EQ(image, Triple(a_, p, b_));
  // ApplyPartial leaves unbound variables alone.
  Triple partial = mu.ApplyPartial(Triple(x_, p, z_));
  EXPECT_EQ(partial, Triple(a_, p, z_));
}

TEST_F(MappingTest, OrderingAndEquality) {
  Mapping mu1, mu2;
  mu1.Bind(x_, a_);
  mu2.Bind(x_, a_);
  EXPECT_EQ(mu1, mu2);
  mu2.Bind(y_, b_);
  EXPECT_NE(mu1, mu2);
  EXPECT_TRUE(mu1 < mu2 || mu2 < mu1);
}

TEST_F(MappingTest, HashAgreesWithEquality) {
  Mapping mu1, mu2;
  mu1.Bind(x_, a_);
  mu1.Bind(y_, b_);
  mu2.Bind(y_, b_);
  mu2.Bind(x_, a_);
  EXPECT_EQ(MappingHash{}(mu1), MappingHash{}(mu2));
}

TEST_F(MappingTest, ToStringRendersBindings) {
  Mapping mu;
  mu.Bind(x_, a_);
  EXPECT_EQ(mu.ToString(pool_), "{?x -> a}");
}

}  // namespace
}  // namespace wdsparql
