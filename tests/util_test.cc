#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/combinatorics.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/timer.h"
#include "util/undirected_graph.h"

namespace wdsparql {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotWellDesigned), "NotWellDesigned");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted), "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(StringsTest, StrSplit) {
  auto pieces = StrSplit("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsWithAndIdentChar) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(IsIdentChar('a'));
  EXPECT_TRUE(IsIdentChar(':'));
  EXPECT_TRUE(IsIdentChar('#'));
  EXPECT_FALSE(IsIdentChar(' '));
  EXPECT_FALSE(IsIdentChar('(')) << "parens delimit patterns";
}

TEST(RngTest, DeterministicStreams) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BoundedRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 100; ++i) {
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(HashTest, CombineIsOrderSensitive) {
  std::size_t a = 1, b = 1;
  HashCombine(a, 2);
  HashCombine(a, 3);
  HashCombine(b, 3);
  HashCombine(b, 2);
  EXPECT_NE(a, b);
}

TEST(CombinatoricsTest, CombinationsCountAndOrder) {
  std::vector<std::vector<int>> combos;
  ForEachCombination(5, 3, [&](const std::vector<int>& c) { combos.push_back(c); });
  EXPECT_EQ(combos.size(), 10u);
  EXPECT_EQ(combos.front(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(combos.back(), (std::vector<int>{2, 3, 4}));
}

TEST(CombinatoricsTest, EdgeCases) {
  int count = 0;
  ForEachCombination(4, 0, [&](const std::vector<int>& c) {
    EXPECT_TRUE(c.empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
  count = 0;
  ForEachCombination(2, 3, [&](const std::vector<int>&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(CombinatoricsTest, SubsetMasks) {
  int count = 0;
  ForEachSubsetMask(4, [&](uint32_t) { ++count; });
  EXPECT_EQ(count, 16);
}

TEST(CombinatoricsTest, MaskToIndices) {
  EXPECT_EQ(MaskToIndices(0b1011), (std::vector<int>{0, 1, 3}));
  EXPECT_TRUE(MaskToIndices(0).empty());
}

TEST(CombinatoricsTest, BinomialCoefficient) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, 5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(6, 3), 20.0);
}

TEST(TimerTest, ElapsedIsMonotone) {
  Timer timer;
  double first = timer.ElapsedSeconds();
  double second = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  timer.Reset();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

TEST(UndirectedGraphTest, BasicEdgeOps) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);  // Duplicate ignored.
  g.AddEdge(3, 3);  // Self loop ignored.
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(UndirectedGraphTest, AddVertexGrows) {
  UndirectedGraph g(2);
  int v = g.AddVertex();
  EXPECT_EQ(v, 2);
  g.AddEdge(0, v);
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(UndirectedGraphTest, ConnectedComponents) {
  UndirectedGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(3, 4);
  auto components = g.ConnectedComponents();
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(components[1], (std::vector<int>{2}));
  EXPECT_EQ(components[2], (std::vector<int>{3, 4}));
}

TEST(UndirectedGraphTest, InducedSubgraph) {
  UndirectedGraph g = UndirectedGraph::Cycle(5);
  std::vector<int> index;
  UndirectedGraph sub = g.InducedSubgraph({0, 1, 2}, &index);
  EXPECT_EQ(sub.NumVertices(), 3);
  EXPECT_EQ(sub.NumEdges(), 2);  // Path 0-1-2.
  EXPECT_EQ(index, (std::vector<int>{0, 1, 2}));
}

TEST(UndirectedGraphTest, DegeneracyValues) {
  EXPECT_EQ(UndirectedGraph::Complete(5).Degeneracy(), 4);
  EXPECT_EQ(UndirectedGraph::Cycle(6).Degeneracy(), 2);
  EXPECT_EQ(UndirectedGraph::Path(6).Degeneracy(), 1);
  EXPECT_EQ(UndirectedGraph(3).Degeneracy(), 0);
  EXPECT_EQ(UndirectedGraph::Grid(3, 3).Degeneracy(), 2);
}

TEST(UndirectedGraphTest, IsClique) {
  UndirectedGraph g = UndirectedGraph::Complete(4);
  EXPECT_TRUE(g.IsClique({0, 1, 2, 3}));
  EXPECT_TRUE(g.IsClique({1, 3}));
  EXPECT_FALSE(g.IsClique({0, 0}));
  UndirectedGraph path = UndirectedGraph::Path(3);
  EXPECT_FALSE(path.IsClique({0, 1, 2}));
}

TEST(UndirectedGraphTest, GridShape) {
  UndirectedGraph g = UndirectedGraph::Grid(3, 4);
  EXPECT_EQ(g.NumVertices(), 12);
  EXPECT_EQ(g.NumEdges(), 3 * 3 + 2 * 4);  // Horizontal + vertical.
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 4));
  EXPECT_FALSE(g.HasEdge(3, 4));  // Row wrap is not an edge.
}

}  // namespace
}  // namespace wdsparql
