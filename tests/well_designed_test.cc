#include <gtest/gtest.h>

#include "sparql/parser.h"
#include "sparql/well_designed.h"
#include "support/testlib.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

PatternPtr Parse(const char* text, TermPool* pool) {
  auto result = ParsePattern(text, pool);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(WellDesignedTest, PaperExample1P1IsWellDesigned) {
  TermPool pool;
  PatternPtr p1 = MakeExample1P1(&pool);
  EXPECT_TRUE(CheckWellDesigned(p1, pool).ok());
}

TEST(WellDesignedTest, PaperExample1P2IsNotWellDesigned) {
  TermPool pool;
  PatternPtr p2 = MakeExample1P2(&pool);
  Status status = CheckWellDesigned(p2, pool);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotWellDesigned);
  // The offending variable is ?z.
  EXPECT_NE(status.message().find("?z"), std::string::npos) << status.message();
}

TEST(WellDesignedTest, SimpleOptIsWellDesigned) {
  TermPool pool;
  PatternPtr p = Parse("(?x p ?y) OPT (?y q ?z)", &pool);
  EXPECT_TRUE(IsWellDesigned(p, pool));
}

TEST(WellDesignedTest, OptVariableLeakIsRejected) {
  TermPool pool;
  // ?z appears in the optional side and then outside the OPT subpattern.
  PatternPtr p = Parse("((?x p ?y) OPT (?y q ?z)) AND (?z r ?x)", &pool);
  EXPECT_FALSE(IsWellDesigned(p, pool));
}

TEST(WellDesignedTest, SharedVariableWithLeftSideIsFine) {
  TermPool pool;
  // ?y occurs in both sides of the OPT, so using it outside is fine.
  PatternPtr p = Parse("((?x p ?y) OPT (?y q ?w)) AND (?y r ?x)", &pool);
  EXPECT_TRUE(IsWellDesigned(p, pool));
}

TEST(WellDesignedTest, NestedOptViolation) {
  TermPool pool;
  // Inner OPT introduces ?w; ?w reappears in a sibling branch of the outer
  // pattern.
  PatternPtr p = Parse("((?x p ?y) OPT ((?y q ?z) OPT (?z q ?w))) AND (?w p ?x)",
                       &pool);
  EXPECT_FALSE(IsWellDesigned(p, pool));
}

TEST(WellDesignedTest, UnionAtTopLevelOnly) {
  TermPool pool;
  PatternPtr good = Parse("((?x p ?y) OPT (?y q ?z)) UNION (?x p ?x)", &pool);
  EXPECT_TRUE(IsWellDesigned(good, pool));

  PatternPtr bad = Parse("(?x p ?y) AND ((?y q ?z) UNION (?y r ?z))", &pool);
  Status status = CheckWellDesigned(bad, pool);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotWellDesigned);
}

TEST(WellDesignedTest, UnionUnderOptRejected) {
  TermPool pool;
  PatternPtr bad = Parse("(?x p ?y) OPT ((?y q ?z) UNION (?y r ?w))", &pool);
  EXPECT_FALSE(IsWellDesigned(bad, pool));
}

TEST(WellDesignedTest, UnionNormalFormSplitsOperands) {
  TermPool pool;
  PatternPtr p = Parse("(?x p ?x) UNION (?y q ?y) UNION (?z r ?z)", &pool);
  auto operands = UnionNormalForm(p);
  ASSERT_TRUE(operands.ok());
  EXPECT_EQ(operands.value().size(), 3u);
  for (const PatternPtr& operand : operands.value()) {
    EXPECT_TRUE(operand->IsUnionFree());
  }
}

TEST(WellDesignedTest, UnionNormalFormSingleOperand) {
  TermPool pool;
  PatternPtr p = Parse("(?x p ?y) OPT (?y q ?z)", &pool);
  auto operands = UnionNormalForm(p);
  ASSERT_TRUE(operands.ok());
  EXPECT_EQ(operands.value().size(), 1u);
}

TEST(WellDesignedTest, FkPatternIsWellDesigned) {
  TermPool pool;
  for (int k = 2; k <= 4; ++k) {
    PatternPtr p = MakeFkPattern(&pool, k);
    EXPECT_TRUE(CheckWellDesigned(p, pool).ok()) << "k = " << k;
  }
}

TEST(WellDesignedTest, BranchAndCliqueFamiliesAreWellDesigned) {
  TermPool pool;
  for (int k = 2; k <= 5; ++k) {
    EXPECT_TRUE(IsWellDesigned(MakeBranchFamilyPattern(&pool, k), pool));
    EXPECT_TRUE(IsWellDesigned(MakeCliqueBranchPattern(&pool, k), pool));
  }
}

TEST(WellDesignedTest, RandomGeneratorProducesWellDesignedPatterns) {
  TermPool pool;
  Rng rng(2024);
  for (int i = 0; i < 50; ++i) {
    PatternPtr p = testlib::RandomWellDesignedPattern(&rng, &pool);
    EXPECT_TRUE(CheckWellDesigned(p, pool).ok()) << p->ToString(pool);
  }
  for (int i = 0; i < 20; ++i) {
    PatternPtr p = testlib::RandomWellDesignedUnion(&rng, &pool, 3);
    EXPECT_TRUE(CheckWellDesigned(p, pool).ok()) << p->ToString(pool);
  }
}

}  // namespace
}  // namespace wdsparql
