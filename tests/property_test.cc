#include <gtest/gtest.h>

#include <algorithm>

#include "engine/query_engine.h"
#include "hom/homomorphism.h"
#include "hom/pebble.h"
#include "hom/treewidth.h"
#include "ptree/forest.h"
#include "ptree/semantics.h"
#include "rdf/generator.h"
#include "sparql/semantics.h"
#include "support/testlib.h"
#include "wd/branch_width.h"
#include "wd/domination.h"
#include "wd/enumerate.h"
#include "wd/eval.h"
#include "wd/local_tractability.h"
#include "wd/paper_examples.h"

namespace wdsparql {
namespace {

// ---------------------------------------------------------------------
// Random-workload sweep: one seed per instantiation, every core
// agreement property checked on the same pattern/graph draw.
// ---------------------------------------------------------------------

class RandomWorkloadProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    pattern_ = testlib::RandomWellDesignedUnion(&rng, &pool_, 2);
    auto forest = BuildPatternForest(pattern_, pool_);
    ASSERT_TRUE(forest.ok());
    forest_ = std::move(forest).value();
    graph_.emplace(&pool_);
    testlib::SmallWorkloadGraph(&rng, 5, 16, 3, &graph_.value());
    answers_ = Evaluate(*pattern_, graph_.value());
    Rng probe_rng(GetParam() ^ 0xfeed);
    probes_ = testlib::MembershipProbes(pattern_, graph_.value(), &probe_rng, 6);
  }

  bool IsAnswer(const Mapping& mu) const {
    return std::find(answers_.begin(), answers_.end(), mu) != answers_.end();
  }

  TermPool pool_;
  PatternPtr pattern_;
  PatternForest forest_;
  std::optional<RdfGraph> graph_;
  std::vector<Mapping> answers_;
  std::vector<Mapping> probes_;
};

TEST_P(RandomWorkloadProperty, ForestIsNrNormalFormAndValid) {
  for (const PatternTree& tree : forest_.trees) {
    EXPECT_TRUE(tree.IsNrNormalForm());
    EXPECT_TRUE(tree.Validate().ok());
  }
}

TEST_P(RandomWorkloadProperty, AstAndLemma1SemanticsAgree) {
  EXPECT_EQ(answers_, EnumerateForestSolutions(forest_, graph_.value()));
}

TEST_P(RandomWorkloadProperty, NaiveMembershipMatchesGroundTruth) {
  for (const Mapping& probe : probes_) {
    EXPECT_EQ(NaiveWdEval(forest_, graph_.value(), probe), IsAnswer(probe))
        << probe.ToString(pool_);
  }
}

TEST_P(RandomWorkloadProperty, PebbleAcceptanceIsSound) {
  for (const Mapping& probe : probes_) {
    for (int k = 1; k <= 3; ++k) {
      if (PebbleWdEval(forest_, graph_.value(), probe, k)) {
        EXPECT_TRUE(IsAnswer(probe)) << "k=" << k << " " << probe.ToString(pool_);
      }
    }
  }
}

TEST_P(RandomWorkloadProperty, PebbleCompleteUnderPromise) {
  Result<int> dw = DominationWidth(forest_, &pool_);
  if (!dw.ok() || dw.value() > 3) GTEST_SKIP() << "outside budgeted promise";
  for (const Mapping& probe : probes_) {
    EXPECT_EQ(PebbleWdEval(forest_, graph_.value(), probe, dw.value()),
              IsAnswer(probe));
  }
}

TEST_P(RandomWorkloadProperty, NaiveEnumerationMatchesAnswers) {
  std::vector<Mapping> streamed;
  EnumerateSolutionsNaive(forest_, graph_.value(), [&](const Mapping& mu) {
    streamed.push_back(mu);
    return true;
  });
  std::sort(streamed.begin(), streamed.end());
  EXPECT_EQ(streamed, answers_);
}

TEST_P(RandomWorkloadProperty, PebbleEnumerationUnderPromise) {
  Result<int> dw = DominationWidth(forest_, &pool_);
  if (!dw.ok() || dw.value() > 3) GTEST_SKIP() << "outside budgeted promise";
  EXPECT_EQ(AllSolutionsPebble(forest_, graph_.value(), dw.value()), answers_);
}

TEST_P(RandomWorkloadProperty, CountMatchesAnswerSetSize) {
  EXPECT_EQ(CountSolutions(forest_, graph_.value()), answers_.size());
}

TEST_P(RandomWorkloadProperty, EngineBackendsAgreeOnVerdictsAndSolutions) {
  QueryEngineOptions naive_options;
  naive_options.backend = Backend::kNaiveHash;
  QueryEngine naive_engine(graph_.value(), naive_options);
  QueryEngineOptions indexed_options;
  indexed_options.backend = Backend::kIndexed;
  QueryEngine indexed_engine(graph_.value(), indexed_options);

  Result<PreparedQuery> naive_q = naive_engine.PrepareParsed(pattern_);
  Result<PreparedQuery> indexed_q = indexed_engine.PrepareParsed(pattern_);
  ASSERT_TRUE(naive_q.ok());
  ASSERT_TRUE(indexed_q.ok());

  // Identical enumerated solution sets, both equal to the ground truth.
  EXPECT_EQ(naive_engine.Solutions(naive_q.value()), answers_);
  EXPECT_EQ(indexed_engine.Solutions(indexed_q.value()), answers_);

  // Identical wdEVAL verdicts on answers and mutated non-answers.
  for (const Mapping& probe : probes_) {
    EXPECT_EQ(naive_engine.Evaluate(naive_q.value(), probe), IsAnswer(probe))
        << probe.ToString(pool_);
    EXPECT_EQ(indexed_engine.Evaluate(indexed_q.value(), probe), IsAnswer(probe))
        << probe.ToString(pool_);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadProperty,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Proposition 3 sweep: sources of known ctw against random hosts; the
// (ctw+1)-pebble game must agree with exact homomorphism.
// ---------------------------------------------------------------------

struct PebbleExactnessCase {
  const char* name;
  int source_kind;  // 0 = path, 1 = cycle, 2 = clique, 3 = grid.
  int size;
  int ctw;  // Known core treewidth bound of the source.
};

class PebbleExactnessProperty
    : public ::testing::TestWithParam<std::tuple<PebbleExactnessCase, uint64_t>> {};

TEST_P(PebbleExactnessProperty, GameAtCtwPlusOneIsExact) {
  const auto& [c, seed] = GetParam();
  TermPool pool;
  TripleSet source;
  TermId e = pool.InternIri("p0");
  switch (c.source_kind) {
    case 0:  // Directed path.
      for (int i = 0; i < c.size; ++i) {
        source.Insert(Triple(pool.InternVariable("a" + std::to_string(i)), e,
                             pool.InternVariable("a" + std::to_string(i + 1))));
      }
      break;
    case 1:  // Directed cycle.
      for (int i = 0; i < c.size; ++i) {
        source.Insert(Triple(pool.InternVariable("a" + std::to_string(i)), e,
                             pool.InternVariable("a" + std::to_string((i + 1) % c.size))));
      }
      break;
    case 2:  // Clique (one direction per pair).
      source = MakeClique(&pool, c.size, "a", "p0");
      break;
    default:  // Rigid grid, with its anchors stripped of rigidity: use
              // the grid edges only (tw = size, core may be smaller; the
              // ctw bound below is still an upper bound).
      for (int i = 0; i < c.size; ++i) {
        for (int j = 0; j < c.size; ++j) {
          auto v = [&](int a, int b) {
            return pool.InternVariable("g" + std::to_string(a) + "_" + std::to_string(b));
          };
          if (j + 1 < c.size) source.Insert(Triple(v(i, j), e, v(i, j + 1)));
          if (i + 1 < c.size) source.Insert(Triple(v(i, j), pool.InternIri("p1"),
                                                   v(i + 1, j)));
        }
      }
      break;
  }
  Rng rng(seed);
  RdfGraph graph(&pool);
  testlib::SmallWorkloadGraph(&rng, 5, 25, 2, &graph);

  bool exact = HasHomomorphism(source, {}, graph.triples());
  bool game = PebbleGameWins(source, {}, graph.triples(), c.ctw + 1);
  EXPECT_EQ(exact, game) << c.name << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PebbleExactnessProperty,  // NOLINT
    ::testing::Combine(
        ::testing::Values(PebbleExactnessCase{"path4", 0, 4, 1},
                          PebbleExactnessCase{"cycle3", 1, 3, 2},
                          PebbleExactnessCase{"cycle5", 1, 5, 2},
                          PebbleExactnessCase{"clique3", 2, 3, 2},
                          PebbleExactnessCase{"clique4", 2, 4, 3},
                          PebbleExactnessCase{"grid2", 3, 2, 2}),
        ::testing::Range<uint64_t>(1, 6)),
    [](const ::testing::TestParamInfo<std::tuple<PebbleExactnessCase, uint64_t>>&
           info) {
      return std::string(std::get<0>(info.param).name) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Treewidth family sweep: closed-form widths for standard families.
// ---------------------------------------------------------------------

struct TreewidthCase {
  const char* name;
  UndirectedGraph graph;
  int expected;
};

std::vector<TreewidthCase> TreewidthCases() {
  std::vector<TreewidthCase> cases;
  for (int n = 2; n <= 7; ++n) {
    cases.push_back({"path", UndirectedGraph::Path(n), 1});
    cases.push_back({"clique", UndirectedGraph::Complete(n), n - 1});
  }
  for (int n = 3; n <= 8; ++n) {
    cases.push_back({"cycle", UndirectedGraph::Cycle(n), 2});
  }
  for (int d = 2; d <= 4; ++d) {
    cases.push_back({"grid", UndirectedGraph::Grid(d, d), d});
    cases.push_back({"grid_rect", UndirectedGraph::Grid(2, d + 1), 2});
  }
  // Complete bipartite K_{m,n}: treewidth min(m, n).
  for (int m = 2; m <= 3; ++m) {
    UndirectedGraph g(m + 4);
    for (int a = 0; a < m; ++a) {
      for (int b = 0; b < 4; ++b) g.AddEdge(a, m + b);
    }
    cases.push_back({"bipartite", g, m});
  }
  // Wheel W_n (cycle + hub): treewidth 3.
  for (int n = 4; n <= 6; ++n) {
    UndirectedGraph g(n + 1);
    for (int i = 0; i < n; ++i) {
      g.AddEdge(i, (i + 1) % n);
      g.AddEdge(i, n);
    }
    cases.push_back({"wheel", g, 3});
  }
  return cases;
}

class TreewidthFamilyProperty : public ::testing::TestWithParam<TreewidthCase> {};

TEST_P(TreewidthFamilyProperty, ExactValueAndValidDecomposition) {
  const TreewidthCase& c = GetParam();
  TreewidthResult result = ComputeTreewidth(c.graph);
  ASSERT_TRUE(result.exact()) << c.name;
  EXPECT_EQ(result.value(), c.expected) << c.name;
  TreeDecomposition decomposition =
      DecompositionFromOrder(c.graph, result.elimination_order);
  EXPECT_TRUE(IsValidTreeDecomposition(c.graph, decomposition)) << c.name;
  EXPECT_EQ(decomposition.Width(), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Families, TreewidthFamilyProperty,
                         ::testing::ValuesIn(TreewidthCases()),
                         [](const ::testing::TestParamInfo<TreewidthCase>& info) {
                           return std::string(info.param.name) + "_" +
                                  std::to_string(info.index);
                         });

// ---------------------------------------------------------------------
// Paper-family width sweep (the Example 5 / Section 3.2 table, per k).
// ---------------------------------------------------------------------

class PaperFamilyProperty : public ::testing::TestWithParam<int> {};

TEST_P(PaperFamilyProperty, FkWidths) {
  int k = GetParam();
  TermPool pool;
  PatternForest forest = MakeFkForest(&pool, k);
  EXPECT_EQ(DominationWidth(forest, &pool).value(), 1);
  EXPECT_EQ(LocalWidth(forest), std::max(k - 1, 1));
}

TEST_P(PaperFamilyProperty, BranchFamilyWidths) {
  int k = GetParam();
  TermPool pool;
  PatternForest forest;
  forest.trees.push_back(MakeBranchFamilyTree(&pool, k));
  EXPECT_EQ(BranchTreewidth(forest.trees[0]), 1);
  EXPECT_EQ(LocalWidth(forest), std::max(k - 1, 1));
  EXPECT_EQ(DominationWidth(forest, &pool).value(), 1);
}

TEST_P(PaperFamilyProperty, CliqueBranchWidths) {
  int k = GetParam();
  TermPool pool;
  PatternForest forest;
  forest.trees.push_back(MakeCliqueBranchTree(&pool, k));
  EXPECT_EQ(BranchTreewidth(forest.trees[0]), std::max(k - 1, 1));
  EXPECT_EQ(DominationWidth(forest, &pool).value(), std::max(k - 1, 1));
}

TEST_P(PaperFamilyProperty, Example3Widths) {
  int k = GetParam();
  TermPool pool;
  EXPECT_EQ(CoreTreewidthOf(MakeExample3S(&pool, k)).value(), std::max(k - 1, 1));
  EXPECT_EQ(CoreTreewidthOf(MakeExample3SPrime(&pool, k)).value(), 1);
  EXPECT_EQ(TreewidthOf(MakeExample3SPrime(&pool, k)).value(), std::max(k - 1, 1));
}

INSTANTIATE_TEST_SUITE_P(K, PaperFamilyProperty, ::testing::Range(2, 7));

}  // namespace
}  // namespace wdsparql
