#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/api_internal.h"
#include "rdf/generator.h"
#include "storage/crc32.h"
#include "storage/format.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "support/testlib.h"
#include "util/rng.h"
#include "wdsparql/wdsparql.h"

/// \file
/// Tests of the persistent storage subsystem: snapshot round trips
/// (differential against the in-memory database, both backends), WAL
/// replay and kill-and-reopen recovery with a torn tail, checkpointing,
/// and corruption hardening — every damaged-file shape must surface as
/// a structured Status, never a crash.

namespace wdsparql {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "wdsparql_storage_" + name;
}

/// Starts every test from a clean slate: stale snapshot/WAL files from
/// a previous run must not leak state across runs.
std::string FreshPath(const std::string& name) {
  std::string path = TempPath(name);
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

void FillRandom(Database* db, int num_triples, uint64_t seed) {
  Rng rng(seed);
  RdfGraph staged(&db->pool());
  testlib::SmallWorkloadGraph(&rng, std::max(6, num_triples / 6), num_triples, 3,
                              &staged);
  for (const Triple& t : staged.triples()) db->AddTriple(t);
}

/// All solutions of `pattern` over `db` under `backend`, rendered and
/// sorted — the byte-comparable answer set of the acceptance criteria.
std::vector<std::string> SortedAnswers(const Database& db, const std::string& pattern,
                                       Backend backend) {
  SessionOptions options;
  options.backend = backend;
  Statement stmt = db.OpenSession(options).Prepare(pattern);
  EXPECT_TRUE(stmt.ok()) << stmt.diagnostics().ToString();
  std::vector<std::string> out;
  for (const Mapping& mu : stmt.Solutions()) out.push_back(mu.ToString(db.pool()));
  std::sort(out.begin(), out.end());
  return out;
}

const char* const kQueries[] = {
    "(?x p0 ?y)",
    "((?x p0 ?y) AND (?y p1 ?z)) OPT (?z p2 ?w)",
    "(?x p1 ?y) OPT ((?y p2 ?z) OPT (?z p0 ?w))",
};

/// Byte-identical sorted output between two databases, both backends,
/// across the query corpus.
void ExpectSameAnswers(const Database& a, const Database& b) {
  for (const char* query : kQueries) {
    EXPECT_EQ(SortedAnswers(a, query, Backend::kIndexed),
              SortedAnswers(b, query, Backend::kIndexed))
        << "indexed backend diverged on " << query;
    EXPECT_EQ(SortedAnswers(a, query, Backend::kNaiveHash),
              SortedAnswers(b, query, Backend::kNaiveHash))
        << "naive backend diverged on " << query;
    EXPECT_EQ(SortedAnswers(a, query, Backend::kIndexed),
              SortedAnswers(b, query, Backend::kNaiveHash))
        << "backends diverged on " << query;
  }
}

/// Opens `path` or aborts the test binary: the mutating tests need a
/// plain `Database` (Result only exposes const access to its value).
Database MustOpen(const std::string& path, const OpenOptions& options = {}) {
  Result<Database> opened = Database::Open(path, options);
  if (!opened.ok()) {
    ADD_FAILURE() << "MustOpen(" << path << "): " << opened.status().ToString();
  }
  WDSPARQL_CHECK(opened.ok());
  return std::move(opened).value();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------
// Snapshot round trips
// ---------------------------------------------------------------------

TEST(SnapshotTest, EmptyDatabaseRoundTrips) {
  std::string path = FreshPath("empty.snap");
  Database db;
  ASSERT_TRUE(db.Save(path).ok());
  Result<Database> reopened = Database::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->size(), 0u);
  EXPECT_TRUE(reopened->empty());
}

TEST(SnapshotTest, RoundTripDifferentialBothBackends) {
  for (int num_triples : {12, 96, 400}) {
    std::string path = FreshPath("roundtrip.snap");
    Database db;
    FillRandom(&db, num_triples, 0xC0FFEE + num_triples);
    ASSERT_TRUE(db.Save(path).ok());

    Result<Database> reopened = Database::Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened->size(), db.size());
    ExpectSameAnswers(db, *reopened);
  }
}

TEST(SnapshotTest, OpenConsumesRunsInPlaceUntilFirstMerge) {
  std::string path = FreshPath("inplace.snap");
  Database db;
  FillRandom(&db, 64, 7);
  ASSERT_TRUE(db.Save(path).ok());

  Database reopened = MustOpen(path);
  // The permutation runs are borrowed straight from the mapped file...
  EXPECT_TRUE(reopened.store().borrows_snapshot());
  // ...until a compaction migrates them into owned storage.
  EXPECT_TRUE(reopened.AddTriple("fresh-s", "fresh-p", "fresh-o"));
  reopened.Compact();
  EXPECT_FALSE(reopened.store().borrows_snapshot());
  EXPECT_TRUE(reopened.Contains(Triple(reopened.pool().InternIri("fresh-s"),
                                       reopened.pool().InternIri("fresh-p"),
                                       reopened.pool().InternIri("fresh-o"))));
}

TEST(SnapshotTest, BufferedFallbackMatchesMmap) {
  std::string path = FreshPath("nommap.snap");
  Database db;
  FillRandom(&db, 80, 11);
  ASSERT_TRUE(db.Save(path).ok());

  OpenOptions buffered;
  buffered.use_mmap = false;
  Result<Database> via_buffer = Database::Open(path, buffered);
  Result<Database> via_mmap = Database::Open(path);
  ASSERT_TRUE(via_buffer.ok()) << via_buffer.status().ToString();
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status().ToString();
  ExpectSameAnswers(*via_buffer, *via_mmap);
}

TEST(SnapshotTest, MutationsOnReopenedDatabaseMatchInMemory) {
  std::string path = FreshPath("mutate.snap");
  Database in_memory;
  FillRandom(&in_memory, 60, 21);
  ASSERT_TRUE(in_memory.Save(path).ok());
  Database reopened = MustOpen(path);

  // Interleave adds and removes identically on both sides; the reopened
  // database starts from borrowed runs and must behave identically.
  std::vector<Triple> victims = in_memory.graph().triples().triples();
  for (std::size_t i = 0; i < victims.size(); i += 3) {
    std::string s = std::string(in_memory.pool().Spelling(victims[i].subject));
    std::string p = std::string(in_memory.pool().Spelling(victims[i].predicate));
    std::string o = std::string(in_memory.pool().Spelling(victims[i].object));
    EXPECT_TRUE(in_memory.RemoveTriple(s, p, o));
    EXPECT_TRUE(reopened.RemoveTriple(s, p, o));
  }
  for (int i = 0; i < 20; ++i) {
    std::string node = "extra" + std::to_string(i);
    EXPECT_TRUE(in_memory.AddTriple(node, "p0", "extra" + std::to_string(i + 1)));
    EXPECT_TRUE(reopened.AddTriple(node, "p0", "extra" + std::to_string(i + 1)));
  }
  EXPECT_EQ(in_memory.size(), reopened.size());
  ExpectSameAnswers(in_memory, reopened);
}

TEST(SnapshotTest, SaveWithPendingDeltaCompactsFirst) {
  std::string path = FreshPath("delta.snap");
  DatabaseOptions options;
  options.merge_threshold = 0;  // Never auto-merge: force a live delta.
  Database db(options);
  FillRandom(&db, 50, 31);
  ASSERT_GT(db.pending_delta(), 0u);
  ASSERT_TRUE(db.Save(path).ok());
  EXPECT_EQ(db.pending_delta(), 0u);
  Result<Database> reopened = Database::Open(path);
  ASSERT_TRUE(reopened.ok());
  ExpectSameAnswers(db, *reopened);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  Result<Database> missing = Database::Open(FreshPath("nonexistent.snap"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------
// Corruption hardening: structured errors, never crashes
// ---------------------------------------------------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = FreshPath("corrupt.snap");
    Database db;
    FillRandom(&db, 120, 41);
    ASSERT_TRUE(db.Save(path_).ok());
    pristine_ = ReadFile(path_);
    ASSERT_GE(pristine_.size(), sizeof(storage::SnapshotHeader));
  }

  /// Opens the file with `bytes` substituted in; expects kCorruption.
  void ExpectCorrupt(std::string bytes, const std::string& what) {
    WriteFile(path_, bytes);
    Result<Database> opened = Database::Open(path_);
    ASSERT_FALSE(opened.ok()) << what << ": corrupt file unexpectedly opened";
    EXPECT_EQ(opened.status().code(), StatusCode::kCorruption)
        << what << ": " << opened.status().ToString();
    EXPECT_FALSE(opened.status().message().empty()) << what;
  }

  std::string path_;
  std::string pristine_;
};

TEST_F(CorruptionTest, BadMagic) {
  std::string bytes = pristine_;
  bytes[0] = 'X';
  ExpectCorrupt(bytes, "bad magic");
}

TEST_F(CorruptionTest, UnsupportedVersion) {
  std::string bytes = pristine_;
  bytes[8] = 99;  // version field (see SnapshotHeader layout)
  ExpectCorrupt(bytes, "bad version");
}

TEST_F(CorruptionTest, FlippedHeaderByte) {
  std::string bytes = pristine_;
  bytes[20] ^= 0xFF;  // Inside file_size: caught by the header CRC.
  ExpectCorrupt(bytes, "flipped header byte");
}

TEST_F(CorruptionTest, FlippedDirectoryByte) {
  std::string bytes = pristine_;
  bytes[sizeof(storage::SnapshotHeader) + 9] ^= 0x40;
  ExpectCorrupt(bytes, "flipped directory byte");
}

TEST_F(CorruptionTest, FlippedByteInEachSection) {
  storage::SnapshotHeader header;
  std::memcpy(&header, pristine_.data(), sizeof(header));
  for (uint32_t i = 0; i < header.section_count; ++i) {
    storage::SectionEntry entry;
    std::memcpy(&entry,
                pristine_.data() + sizeof(header) + i * sizeof(storage::SectionEntry),
                sizeof(entry));
    ASSERT_GT(entry.length, 0u) << "section " << entry.id;
    std::string bytes = pristine_;
    bytes[entry.offset + entry.length / 2] ^= 0x01;
    ExpectCorrupt(bytes, "flipped byte in section " + std::to_string(entry.id));
  }
}

TEST_F(CorruptionTest, TruncatedAtManyLengths) {
  // Mid-header, mid-directory, mid-section, one byte short: every
  // truncation must fail structurally (header CRC, size check, bounds).
  for (std::size_t keep :
       {std::size_t{10}, sizeof(storage::SnapshotHeader) + 8, pristine_.size() / 2,
        pristine_.size() - 1}) {
    ExpectCorrupt(pristine_.substr(0, keep),
                  "truncated to " + std::to_string(keep) + " bytes");
  }
}

TEST_F(CorruptionTest, AppendedGarbage) {
  ExpectCorrupt(pristine_ + "garbage-after-the-snapshot", "appended garbage");
}

TEST_F(CorruptionTest, OutOfRangeDataIdWithRecomputedChecksums) {
  // Semantic corruption with internally consistent CRCs: an SPO entry
  // referencing a DataId past the dictionary must still be rejected
  // (otherwise it aborts later inside Dictionary::Decode — a crash, not
  // a structured error).
  std::string bytes = pristine_;
  storage::SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  char* directory = bytes.data() + sizeof(header);
  const uint64_t directory_bytes = header.section_count * sizeof(storage::SectionEntry);
  for (uint32_t i = 0; i < header.section_count; ++i) {
    storage::SectionEntry entry;
    std::memcpy(&entry, directory + i * sizeof(entry), sizeof(entry));
    if (entry.id != storage::kSectionSpo) continue;
    uint32_t huge = 0x7FFFFFFEu;
    std::memcpy(bytes.data() + entry.offset, &huge, sizeof(huge));
    entry.crc = storage::Crc32(bytes.data() + entry.offset, entry.length);
    std::memcpy(directory + i * sizeof(entry), &entry, sizeof(entry));
  }
  header.directory_crc = storage::Crc32(directory, directory_bytes);
  header.header_crc = 0;
  header.header_crc = storage::Crc32(&header, sizeof(header));
  std::memcpy(bytes.data(), &header, sizeof(header));
  ExpectCorrupt(bytes, "out-of-range DataId");
}

// ---------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------

OpenOptions WalOptions(bool create_if_missing = true) {
  OpenOptions options;
  options.durability = Durability::kWal;
  options.create_if_missing = create_if_missing;
  return options;
}

TEST(WalTest, CreateIfMissingStartsEmptyAndRecovers) {
  std::string path = FreshPath("fresh.snap");
  {
    Database db = MustOpen(path, WalOptions());
    EXPECT_TRUE(db.empty());
    EXPECT_TRUE(db.AddTriple("a", "p", "b"));
    EXPECT_TRUE(db.AddTriple("b", "p", "c"));
    EXPECT_TRUE(db.RemoveTriple("a", "p", "b"));
    // Dropped without Checkpoint: the log is the only durable copy.
  }
  Result<Database> recovered = Database::Open(path, WalOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->size(), 1u);
  EXPECT_TRUE(recovered->Contains(Triple(recovered->pool().InternIri("b"),
                                         recovered->pool().InternIri("p"),
                                         recovered->pool().InternIri("c"))));
  EXPECT_FALSE(recovered->Contains(Triple(recovered->pool().InternIri("a"),
                                          recovered->pool().InternIri("p"),
                                          recovered->pool().InternIri("b"))));
}

TEST(WalTest, ReplayMatchesDirectMutationBothBackends) {
  std::string path = FreshPath("equiv.snap");
  Database direct;

  // Interleaved add/remove stream applied to a WAL database (with a
  // kill-and-reopen in the middle) and to a plain in-memory database.
  Rng rng(0xAB);
  std::vector<std::pair<bool, Triple>> stream;
  {
    Database wal_db = MustOpen(path, WalOptions());
    for (int i = 0; i < 300; ++i) {
      std::string s = "n" + std::to_string(rng.NextBounded(24));
      std::string p = "p" + std::to_string(rng.NextBounded(3));
      std::string o = "n" + std::to_string(rng.NextBounded(24));
      if (rng.NextBounded(4) == 0) {
        EXPECT_EQ(wal_db.RemoveTriple(s, p, o), direct.RemoveTriple(s, p, o));
      } else {
        EXPECT_EQ(wal_db.AddTriple(s, p, o), direct.AddTriple(s, p, o));
      }
      if (i == 150) {
        // Kill and reopen mid-stream: replay must reconstruct exactly.
        // The old handle must drop first — its flock (correctly) blocks
        // a second writer on the same log.
        wal_db = Database();
        wal_db = MustOpen(path, WalOptions());
      }
    }
    EXPECT_EQ(wal_db.size(), direct.size());
    ExpectSameAnswers(direct, wal_db);
  }
  Database final_reopen = MustOpen(path, WalOptions());
  EXPECT_EQ(final_reopen.size(), direct.size());
  ExpectSameAnswers(direct, final_reopen);
}

TEST(WalTest, TornTailDiscardedEarlierFramesIntact) {
  std::string path = FreshPath("torn.snap");
  {
    Database db = MustOpen(path, WalOptions());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(db.AddTriple("s" + std::to_string(i), "p", "o"));
    }
  }
  // Tear the final frame: chop three bytes off the log, as a crash
  // mid-append would.
  std::string wal_path = path + ".wal";
  std::string log = ReadFile(wal_path);
  WriteFile(wal_path, log.substr(0, log.size() - 3));

  Database recovered = MustOpen(path, WalOptions());
  EXPECT_EQ(recovered.size(), 7u);  // s7 torn away, s0..s6 intact.
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(recovered.Contains(
        Triple(recovered.pool().InternIri("s" + std::to_string(i)),
               recovered.pool().InternIri("p"), recovered.pool().InternIri("o"))));
  }
  // The torn tail was truncated on open, so appends go to a clean log:
  // another kill-and-reopen still sees 7 + the new one. (The first
  // handle must drop before the next writer — the WAL is flock'd.)
  ASSERT_TRUE(recovered.AddTriple("s-after-tear", "p", "o"));
  recovered = Database();
  Database again = MustOpen(path, WalOptions());
  EXPECT_EQ(again.size(), 8u);
}

TEST(WalTest, GarbageTailDiscarded) {
  std::string path = FreshPath("garbagetail.snap");
  {
    Database db = MustOpen(path, WalOptions());
    ASSERT_TRUE(db.AddTriple("a", "p", "b"));
  }
  std::string wal_path = path + ".wal";
  WriteFile(wal_path, ReadFile(wal_path) + std::string(64, '\xEE'));
  Database recovered = MustOpen(path, WalOptions());
  EXPECT_EQ(recovered.size(), 1u);
}

TEST(WalTest, SecondWriterOnSameLogIsRefused) {
  std::string path = FreshPath("locked.snap");
  Database first = MustOpen(path, WalOptions());
  ASSERT_TRUE(first.AddTriple("a", "p", "b"));
  Result<Database> second = Database::Open(path, WalOptions());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  // Dropping the first writer releases the lock.
  first = Database();
  Database reopened = MustOpen(path, WalOptions());
  EXPECT_EQ(reopened.size(), 1u);
}

TEST(WalTest, SubHeaderLogReinitialisesAsFresh) {
  // A crash between WAL creation and header durability leaves a file
  // shorter than the header. No frame can have been acknowledged
  // against it, so it must reinitialise instead of bricking Open.
  std::string path = FreshPath("shortwal.snap");
  {
    Database db = MustOpen(path, WalOptions());
    ASSERT_TRUE(db.AddTriple("a", "p", "b"));
  }
  WriteFile(path + ".wal", std::string("WDSQ"));  // 4 of 16 header bytes.
  Database recovered = MustOpen(path, WalOptions());
  EXPECT_EQ(recovered.size(), 0u);  // The torn log held no records.
  EXPECT_TRUE(recovered.AddTriple("c", "p", "d"));
  recovered = Database();  // Release the flock before the next writer.
  Database again = MustOpen(path, WalOptions());
  EXPECT_EQ(again.size(), 1u);
}

TEST(WalTest, DamagedHeaderIsCorruption) {
  std::string path = FreshPath("badwal.snap");
  {
    Database db = MustOpen(path, WalOptions());
    ASSERT_TRUE(db.AddTriple("a", "p", "b"));
  }
  std::string wal_path = path + ".wal";
  std::string log = ReadFile(wal_path);
  log[0] = 'X';
  WriteFile(wal_path, log);
  Result<Database> opened = Database::Open(path, WalOptions());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, CheckpointFoldsLogIntoSnapshot) {
  std::string path = FreshPath("checkpoint.snap");
  {
    Database db = MustOpen(path, WalOptions());
    FillRandom(&db, 90, 51);
    ASSERT_GT(ReadFile(path + ".wal").size(), sizeof(storage::WalHeader));
    ASSERT_TRUE(db.Checkpoint().ok());
    // The snapshot now carries everything; the log is back to a bare
    // header.
    EXPECT_EQ(ReadFile(path + ".wal").size(), sizeof(storage::WalHeader));
    ASSERT_TRUE(db.AddTriple("post", "p0", "checkpoint"));
  }
  // Snapshot + the one post-checkpoint frame replay to the full state.
  Database recovered = MustOpen(path, WalOptions());
  EXPECT_TRUE(recovered.Contains(Triple(recovered.pool().InternIri("post"),
                                        recovered.pool().InternIri("p0"),
                                        recovered.pool().InternIri("checkpoint"))));
  // A read-only open (no WAL) sees exactly the checkpointed prefix.
  Database snapshot_only = MustOpen(path);
  EXPECT_EQ(snapshot_only.size() + 1, recovered.size());
}

TEST(WalTest, CheckpointRequiresOpenedDatabase) {
  Database db;
  db.AddTriple("a", "p", "b");
  Status status = db.Checkpoint();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(WalTest, MissingSnapshotWithoutCreateIsNotFound) {
  Result<Database> opened =
      Database::Open(FreshPath("nocreate.snap"), WalOptions(/*create_if_missing=*/false));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------
// Storage-layer plumbing
// ---------------------------------------------------------------------

TEST(StoragePlumbingTest, HealthyDatabaseReportsOkStorageStatus) {
  std::string path = FreshPath("healthy.snap");
  Database db = MustOpen(path, WalOptions());
  EXPECT_TRUE(db.storage_status().ok());
  EXPECT_TRUE(db.AddTriple("a", "p", "b"));
  EXPECT_TRUE(db.storage_status().ok());
}

TEST(StoragePlumbingTest, WriteAheadLogRecordBytesTrackAppends) {
  std::string path = FreshPath("bytes.wal");
  std::remove(path.c_str());
  std::vector<storage::WalRecord> replayed;
  Result<storage::WriteAheadLog> wal =
      storage::WriteAheadLog::Open(path, WalSyncMode::kNone, &replayed);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.value().record_bytes(), 0u);
  storage::WalRecord record;
  record.type = storage::WalRecordType::kAddTriple;
  record.subject = "s";
  record.predicate = "p";
  record.object = "o";
  storage::WriteAheadLog live = std::move(wal).value();
  ASSERT_TRUE(live.Append(record).ok());
  EXPECT_GT(live.record_bytes(), 0u);
  ASSERT_TRUE(live.Truncate().ok());
  EXPECT_EQ(live.record_bytes(), 0u);
}

}  // namespace
}  // namespace wdsparql
